/** @file Timing-core tests: MLP throttling, dependence, think time,
 *  L1 behaviour. */

#include <gtest/gtest.h>

#include <memory>

#include "coherence/node.hh"
#include "cpu/core.hh"
#include "net/network.hh"
#include "topology/torus.hh"

namespace
{

using namespace gs;

/** Scripted traffic source for directed core tests. */
class Script : public cpu::TrafficSource
{
  public:
    explicit Script(std::vector<cpu::MemOp> ops) : ops(std::move(ops))
    {
    }

    std::optional<cpu::MemOp>
    next() override
    {
        if (idx >= ops.size())
            return std::nullopt;
        return ops[idx++];
    }

  private:
    std::vector<cpu::MemOp> ops;
    std::size_t idx = 0;
};

struct CoreFixture
{
    explicit CoreFixture(cpu::CoreParams params = {})
        : topo(2, 1), net(ctx, topo, net::NetworkParams::gs1280())
    {
        coher::NodeConfig cfg;
        for (NodeId n = 0; n < 2; ++n)
            nodes.push_back(std::make_unique<coher::CoherentNode>(
                ctx, net, n, map, cfg));
        core = std::make_unique<cpu::TimingCore>(ctx, *nodes[0],
                                                 params);
    }

    double
    runScript(std::vector<cpu::MemOp> ops)
    {
        Script script(std::move(ops));
        bool done = false;
        core->run(script, [&] { done = true; });
        ctx.queue().runUntil(ctx.now() + 100 * tickMs);
        EXPECT_TRUE(done);
        return core->stats().elapsedNs();
    }

    SimContext ctx;
    topo::Torus2D topo;
    mem::NodeOwnedMap map;
    net::Network net;
    std::vector<std::unique_ptr<coher::CoherentNode>> nodes;
    std::unique_ptr<cpu::TimingCore> core;
};

cpu::MemOp
read(mem::Addr a, bool dependent = false)
{
    cpu::MemOp op;
    op.addr = a;
    op.dependent = dependent;
    return op;
}

TEST(TimingCore, CompletesAllOps)
{
    CoreFixture f;
    std::vector<cpu::MemOp> ops;
    for (int i = 0; i < 32; ++i)
        ops.push_back(read(static_cast<mem::Addr>(i) * 64));
    f.runScript(ops);
    EXPECT_EQ(f.core->stats().opsDone, 32u);
    EXPECT_TRUE(f.core->done());
}

TEST(TimingCore, DependentLoadsSerialize)
{
    // Independent misses overlap; dependent misses do not. Use
    // distinct lines so merging cannot hide the difference.
    auto makeOps = [](bool dep) {
        std::vector<cpu::MemOp> ops;
        for (int i = 0; i < 64; ++i)
            ops.push_back(
                read(mem::regionBase(1) +
                         static_cast<mem::Addr>(i) * 8192,
                     dep));
        return ops;
    };
    CoreFixture indep;
    double tIndep = indep.runScript(makeOps(false));
    CoreFixture dep;
    double tDep = dep.runScript(makeOps(true));
    EXPECT_GT(tDep, 2.0 * tIndep);
}

TEST(TimingCore, MlpLimitsOutstanding)
{
    cpu::CoreParams p;
    p.mlp = 2;
    CoreFixture f(p);
    std::vector<cpu::MemOp> ops;
    for (int i = 0; i < 16; ++i)
        ops.push_back(read(mem::regionBase(1) +
                           static_cast<mem::Addr>(i) * 4096));
    Script script(std::move(ops));
    bool done = false;
    f.core->run(script, [&] { done = true; });
    int peak = 0;
    while (!done && f.ctx.queue().step())
        peak = std::max(peak, f.core->outstanding());
    EXPECT_LE(peak, 2);
    EXPECT_TRUE(done);
}

TEST(TimingCore, HigherMlpIsFaster)
{
    auto mkOps = [] {
        std::vector<cpu::MemOp> ops;
        for (int i = 0; i < 128; ++i)
            ops.push_back(read(mem::regionBase(1) +
                               static_cast<mem::Addr>(i) * 4096));
        return ops;
    };
    cpu::CoreParams p1;
    p1.mlp = 1;
    CoreFixture narrow(p1);
    double t1 = narrow.runScript(mkOps());

    cpu::CoreParams p8;
    p8.mlp = 8;
    CoreFixture wide(p8);
    double t8 = wide.runScript(mkOps());
    EXPECT_GT(t1, 3.0 * t8);
}

TEST(TimingCore, ThinkTimeSerializes)
{
    CoreFixture f;
    std::vector<cpu::MemOp> ops;
    for (int i = 0; i < 10; ++i) {
        cpu::MemOp op = read(static_cast<mem::Addr>(i) * 64);
        op.thinkNs = 100.0;
        ops.push_back(op);
    }
    double ns = f.runScript(ops);
    EXPECT_GE(ns, 1000.0);
}

TEST(TimingCore, L1HitsAreFast)
{
    CoreFixture f;
    // Touch a line, then re-read it many times: L1 hits.
    std::vector<cpu::MemOp> ops;
    for (int i = 0; i < 100; ++i)
        ops.push_back(read(0, true));
    f.runScript(ops);
    EXPECT_GE(f.core->stats().l1Hits, 99u);
    // 99 dependent L1 hits at 2.6 ns: well under a miss each.
    EXPECT_LT(f.core->stats().elapsedNs(), 100 * 20.0);
}

TEST(TimingCore, WritesReachCoherentCache)
{
    CoreFixture f;
    cpu::MemOp w;
    w.addr = 4096;
    w.write = true;
    f.runScript({w});
    EXPECT_EQ(f.nodes[0]->l2().state(4096),
              mem::LineState::Modified);
}

TEST(TimingCore, WriteAfterReadUpgradesDespiteL1)
{
    // Read makes the line L1-resident; the write must still reach
    // the L2 and set Modified (no stale L1 write path).
    CoreFixture f;
    cpu::MemOp r = read(8192, true);
    cpu::MemOp w;
    w.addr = 8192;
    w.write = true;
    w.dependent = true;
    f.runScript({r, w});
    EXPECT_EQ(f.nodes[0]->l2().state(8192),
              mem::LineState::Modified);
}

TEST(TimingCore, RunReportsStats)
{
    CoreFixture f;
    f.runScript({read(0), read(64)});
    const auto &st = f.core->stats();
    EXPECT_EQ(st.opsIssued, 2u);
    EXPECT_EQ(st.opsDone, 2u);
    EXPECT_GT(st.elapsedNs(), 0.0);
}

TEST(TimingCore, CoreIsReusable)
{
    CoreFixture f;
    f.runScript({read(0)});
    f.runScript({read(64), read(128)});
    EXPECT_EQ(f.core->stats().opsDone, 2u); // stats are per-run
}

} // namespace

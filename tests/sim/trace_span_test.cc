/**
 * @file
 * Unit tests for the latency x-ray span layer: the sampling
 * determinism contract, exhaustive stage attribution, the canonical
 * merge, and collector checkpoint round-trips (docs/TRACING.md).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/telemetry.hh"
#include "sim/trace_span.hh"

namespace
{

using namespace gs;
using trace::SpanCollector;
using trace::SpanState;

/** The ids sampleMiss selects over @p misses issues on each node. */
std::vector<std::uint64_t>
sampleSet(std::uint64_t seed, double rate, int nodes, int misses)
{
    SpanCollector c(seed, rate, nodes);
    std::vector<std::uint64_t> picked;
    for (int m = 0; m < misses; ++m)
        for (int n = 0; n < nodes; ++n)
            if (std::uint64_t id = c.sampleMiss(n))
                picked.push_back(id);
    return picked;
}

TEST(SpanSampling, FixedSeedFixesTheSampleSet)
{
    auto a = sampleSet(42, 0.25, 4, 500);
    auto b = sampleSet(42, 0.25, 4, 500);
    EXPECT_EQ(a, b) << "same seed must select the same spans";
    EXPECT_NE(a, sampleSet(43, 0.25, 4, 500))
        << "different seeds selected identical spans (suspicious)";
}

TEST(SpanSampling, RateIsIndependentOfIssueInterleaving)
{
    // The id stream is per-node, so issuing node-major vs
    // miss-major must select the same ids (only discovery order
    // differs); sort both and compare as sets.
    SpanCollector c(7, 0.5, 2);
    std::vector<std::uint64_t> nodeMajor;
    for (int n = 0; n < 2; ++n)
        for (int m = 0; m < 200; ++m)
            if (auto id = c.sampleMiss(n))
                nodeMajor.push_back(id);
    auto missMajor = sampleSet(7, 0.5, 2, 200);
    std::sort(nodeMajor.begin(), nodeMajor.end());
    std::sort(missMajor.begin(), missMajor.end());
    EXPECT_EQ(nodeMajor, missMajor);
}

TEST(SpanSampling, RateIsApproximatelyHonored)
{
    const int total = 16 * 2000;
    for (double rate : {0.05, 0.3, 0.8}) {
        auto picked = sampleSet(11, rate, 16, 2000);
        double got = static_cast<double>(picked.size()) / total;
        // The mixer is full-avalanche, so the deviation behaves
        // binomially: 0.015 is > 4 sigma at every rate tested.
        EXPECT_NEAR(got, rate, 0.015)
            << "rate " << rate << " sampled " << picked.size()
            << " of " << total;
    }
}

TEST(SpanSampling, EdgeRatesAreExact)
{
    EXPECT_TRUE(sampleSet(3, 0.0, 4, 200).empty());
    EXPECT_EQ(sampleSet(3, 1.0, 4, 200).size(), 4u * 200u);
}

TEST(SpanState, AdvanceAttributesEveryTickToExactlyOneStage)
{
    SpanState s;
    s.id = 1;
    s.begin = s.mark = 1000;
    s.stage = trace::Inject;
    s.advance(1400, trace::Link);      // inject 400
    s.advance(2100, trace::VcWait);    // link 700
    s.advance(2100, trace::Link);      // vc_wait 0
    s.advance(3000, trace::Directory); // link +900
    s.advance(3500, trace::Dram);      // directory 500
    s.advance(5000, trace::Reply);     // dram 1500
    s.advance(6200, trace::Reply);     // reply 1200, span done

    EXPECT_EQ(s.ticks[trace::Inject], 400u);
    EXPECT_EQ(s.ticks[trace::VcWait], 0u);
    EXPECT_EQ(s.ticks[trace::Link], 1600u);
    EXPECT_EQ(s.ticks[trace::Directory], 500u);
    EXPECT_EQ(s.ticks[trace::Dram], 1500u);
    EXPECT_EQ(s.ticks[trace::Reply], 1200u);

    Tick sum = 0;
    for (Tick t : s.ticks)
        sum += t;
    EXPECT_EQ(sum, Tick(6200 - 1000))
        << "stage sum must equal end-to-end by construction";
}

/** A finished span beginning at @p begin on @p node. */
SpanState
finishedSpan(std::uint64_t id, Tick begin, Tick len)
{
    SpanState s;
    s.id = id;
    s.begin = s.mark = begin;
    s.stage = trace::Inject;
    s.advance(begin + len / 2, trace::Link);
    s.advance(begin + len, trace::Reply);
    return s;
}

TEST(SpanCollector, FinalizeMergesIntoCanonicalOrder)
{
    SpanCollector c(1, 1.0, 3);
    // Deliberately complete out of global time order and across
    // lanes: (begin, id) must still come out sorted.
    c.complete(2, finishedSpan(c.sampleMiss(2), 900, 100), 1000);
    c.complete(0, finishedSpan(c.sampleMiss(0), 500, 80), 580);
    c.complete(1, finishedSpan(c.sampleMiss(1), 500, 60), 560);
    c.complete(0, finishedSpan(c.sampleMiss(0), 100, 50), 150);
    c.finalize();

    const auto &spans = c.spans();
    ASSERT_EQ(spans.size(), 4u);
    for (std::size_t i = 1; i < spans.size(); ++i) {
        bool ordered =
            spans[i - 1].begin < spans[i].begin ||
            (spans[i - 1].begin == spans[i].begin &&
             spans[i - 1].id < spans[i].id);
        EXPECT_TRUE(ordered) << "spans " << i - 1 << " and " << i
                             << " out of canonical order";
    }
    EXPECT_EQ(c.completedCount(), 4u);
    EXPECT_EQ(c.sampledCount(), 4u);

    // Idempotent: a second finalize changes nothing.
    c.finalize();
    EXPECT_EQ(c.spans().size(), 4u);
    EXPECT_EQ(c.completedCount(), 4u);
}

TEST(SpanCollector, TelemetryStageMeansSumToTotalMean)
{
    SpanCollector c(1, 1.0, 1);
    for (int i = 0; i < 32; ++i) {
        c.complete(0,
                   finishedSpan(c.sampleMiss(0), Tick(i) * 1000,
                                100 + Tick(i) * 7),
                   Tick(i) * 1000 + 100 + Tick(i) * 7);
    }
    c.finalize();

    telem::Registry reg;
    c.registerTelemetry(reg, "xray");
    double stageSum = 0;
    for (int s = 0; s < trace::numStages; ++s) {
        stageSum += reg.value(std::string("xray.stage.") +
                              trace::stageName(s) + "_ns");
    }
    // Every span samples every stage (zeros included), so the means
    // sum exactly — this is the invariant the 1% bench check leans
    // on.
    EXPECT_NEAR(stageSum, reg.value("xray.total_ns"), 1e-9);
    EXPECT_EQ(static_cast<std::uint64_t>(reg.value("xray.completed")),
              32u);
    EXPECT_FALSE(std::isnan(reg.value("xray.total_ns.p95")));
}

TEST(SpanCollector, ClearStatsDropsSpansButKeepsIdentity)
{
    SpanCollector c(1, 1.0, 1);
    auto first = c.sampleMiss(0);
    c.complete(0, finishedSpan(first, 0, 100), 100);
    c.clearStats();
    c.finalize();
    EXPECT_EQ(c.spans().size(), 0u);
    EXPECT_EQ(c.completedCount(), 0u);
    // The issue sequence keeps advancing across the reset: span ids
    // are run-wide, so a warmup reset must not re-issue id 1 (which
    // would change the post-reset sample set).
    EXPECT_GT(c.sampleMiss(0), first);
}

TEST(SpanCollector, CheckpointRoundTripsLanes)
{
    SpanCollector a(5, 1.0, 2);
    a.complete(0, finishedSpan(a.sampleMiss(0), 10, 100), 110);
    a.complete(1, finishedSpan(a.sampleMiss(1), 20, 200), 220);

    ckpt::Serializer s;
    a.saveCkpt(s);

    SpanCollector b(5, 1.0, 2);
    ckpt::Deserializer d(s.buffer().data(), s.buffer().size());
    b.restoreCkpt(d);
    EXPECT_TRUE(d.ok());

    a.finalize();
    b.finalize();
    ASSERT_EQ(b.spans().size(), a.spans().size());
    for (std::size_t i = 0; i < a.spans().size(); ++i) {
        EXPECT_EQ(b.spans()[i].id, a.spans()[i].id);
        EXPECT_EQ(b.spans()[i].begin, a.spans()[i].begin);
        EXPECT_EQ(b.spans()[i].end, a.spans()[i].end);
        EXPECT_EQ(b.spans()[i].ticks, a.spans()[i].ticks);
    }
    // The restored issue sequence continues where the saved one
    // left off, keeping post-restore span ids aligned.
    EXPECT_EQ(b.sampleMiss(0), a.sampleMiss(0));
}

TEST(SpanCollector, ExportTraceBalancesAndBindsFlows)
{
    SpanCollector c(1, 1.0, 1);
    c.complete(0, finishedSpan(c.sampleMiss(0), 1000, 500), 1500);
    c.complete(0, finishedSpan(c.sampleMiss(0), 3000, 250), 3250);
    c.finalize();

    telem::TraceWriter tw;
    c.exportTrace(tw);
    std::ostringstream os;
    tw.write(os);
    const std::string out = os.str();

    auto count = [&out](const std::string &needle) {
        std::size_t n = 0;
        for (std::size_t at = out.find(needle);
             at != std::string::npos;
             at = out.find(needle, at + 1)) {
            n += 1;
        }
        return n;
    };
    EXPECT_EQ(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
    EXPECT_EQ(count("\"ph\":\"s\""), 2u);
    EXPECT_EQ(count("\"ph\":\"f\""), 2u);
    EXPECT_NE(out.find("\"name\":\"txn\""), std::string::npos);
    EXPECT_NE(out.find("\"bp\":\"e\""), std::string::npos);
}

} // namespace

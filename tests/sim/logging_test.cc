/** @file Logging/assert behaviour tests. */

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace
{

TEST(Logging, VerboseToggle)
{
    bool before = gs::verbose();
    gs::setVerbose(false);
    EXPECT_FALSE(gs::verbose());
    gs::setVerbose(true);
    EXPECT_TRUE(gs::verbose());
    gs::setVerbose(before);
}

TEST(Logging, AssertPassesSilently)
{
    gs_assert(1 + 1 == 2, "arithmetic still works");
    SUCCEED();
}

TEST(LoggingDeath, AssertFailureAborts)
{
    EXPECT_DEATH(gs_assert(false, "value was ", 42),
                 "assertion failed.*42");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(gs_panic("broken invariant ", 7),
                 "panic: broken invariant 7");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(gs_fatal("user error ", "here"),
                ::testing::ExitedWithCode(1), "fatal: user error");
}

} // namespace

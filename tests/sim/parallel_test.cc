/**
 * @file
 * Unit tests for the conservative parallel engine, independent of
 * the network layer: epoch windows, deadline clamping, skip-ahead,
 * the stop predicate, and mailbox-merge determinism across worker
 * counts (with a minimal double-buffered mailbox fixture mirroring
 * the protocol the Network uses — see docs/PARALLEL.md).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/parallel.hh"

namespace
{

using gs::maxTick;
using gs::ParallelEngine;
using gs::Tick;

TEST(ParallelEngine, ClampsThreadsToDomains)
{
    ParallelEngine::Config cfg;
    cfg.domains = 3;
    cfg.threads = 8;
    cfg.lookahead = 10;
    ParallelEngine eng(cfg);
    EXPECT_EQ(eng.domains(), 3);
    EXPECT_EQ(eng.threads(), 3);
    EXPECT_EQ(eng.lookahead(), Tick(10));
}

TEST(ParallelEngine, SingleDomainFiresEverything)
{
    ParallelEngine::Config cfg;
    cfg.domains = 1;
    cfg.lookahead = 7;
    ParallelEngine eng(cfg);

    std::vector<Tick> fired;
    auto &q = eng.domainCtx(0).queue();
    for (Tick t : {Tick(5), Tick(6), Tick(40), Tick(400)})
        q.scheduleAt(t, [&fired, &q] { fired.push_back(q.now()); });

    Tick end = eng.run(1000);
    EXPECT_EQ(fired, (std::vector<Tick>{5, 6, 40, 400}));
    EXPECT_EQ(end, Tick(400));
    EXPECT_EQ(eng.domainCtx(0).now(), Tick(400));
    EXPECT_EQ(eng.firedTotal(), 4u);
}

TEST(ParallelEngine, DeadlineIsInclusiveAndClamped)
{
    ParallelEngine::Config cfg;
    cfg.domains = 1;
    cfg.lookahead = 100; // window would overshoot without clamping
    ParallelEngine eng(cfg);

    int fired = 0;
    auto &q = eng.domainCtx(0).queue();
    q.scheduleAt(10, [&] { fired += 1; });
    q.scheduleAt(20, [&] { fired += 1; });
    q.scheduleAt(21, [&] { fired += 1; });

    eng.run(20); // serial runUntil contract: fires <= deadline only
    EXPECT_EQ(fired, 2);

    eng.run(1000); // the rest fires on a later run
    EXPECT_EQ(fired, 3);
}

TEST(ParallelEngine, SkipAheadJumpsIdleGaps)
{
    ParallelEngine::Config cfg;
    cfg.domains = 2;
    cfg.threads = 2;
    cfg.lookahead = 10;
    ParallelEngine eng(cfg);

    // Two events a million ticks apart: epoch windows must anchor at
    // pending work, not sweep every lookahead interval in between.
    int fired = 0;
    eng.domainCtx(0).queue().scheduleAt(5, [&fired] { fired += 1; });
    int fired1 = 0;
    eng.domainCtx(1).queue().scheduleAt(1'000'000,
                                        [&fired1] { fired1 += 1; });

    Tick end = eng.run(2'000'000);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(fired1, 1);
    EXPECT_EQ(end, Tick(1'000'000));
    EXPECT_LT(eng.epochs(), 10u);
}

TEST(ParallelEngine, StopPredicateEndsRunAtFirstBarrier)
{
    ParallelEngine::Config cfg;
    cfg.domains = 2;
    cfg.lookahead = 5;
    ParallelEngine eng(cfg);

    int fired = 0;
    eng.domainCtx(0).queue().scheduleAt(10, [&fired] { fired += 1; });

    // Stop already satisfied: mirrors the serial loop's
    // check-before-step — nothing may fire.
    eng.run(1000, [] { return true; });
    EXPECT_EQ(fired, 0);

    eng.run(1000);
    EXPECT_EQ(fired, 1);
}

/**
 * Two domains ping-ponging cross-domain work through the same
 * double-buffered mailbox protocol the Network uses: posts during
 * epoch k land in parity k&1, the consumer merges parity (k-1)&1 at
 * the start of epoch k. The per-domain fired logs must be identical
 * at 1 and 2 worker threads.
 */
struct PingPongFixture
{
    static constexpr Tick hop = 13; // > lookahead: due crosses windows

    explicit PingPongFixture(int threads, int hops)
        : remaining(hops)
    {
        ParallelEngine::Config cfg;
        cfg.domains = 2;
        cfg.threads = threads;
        cfg.lookahead = 4;
        eng = std::make_unique<ParallelEngine>(cfg);

        eng->setMergeHook([this](int d, Tick ws) { mergeFor(d, ws); });
        eng->setPendingMinHook(
            [this](int d) { return pendingMinOf(d); });

        // Seed: domain 0 acts at tick 1.
        eng->domainCtx(0).queue().scheduleAt(1, [this] { act(0); });
    }

    void
    act(int d)
    {
        Tick now = eng->domainCtx(d).now();
        log[d].push_back(now);
        if (remaining <= 0)
            return;
        remaining -= 1;
        post(d, 1 - d, now + hop);
    }

    void
    post(int src, int dst, Tick due)
    {
        const std::size_t par = (epoch[src] + 1) & 1;
        auto &mb = mail[src][dst];
        mb.minDue[par] = std::min(mb.minDue[par], due);
        mb.buf[par].push_back(due);
    }

    void
    mergeFor(int d, Tick ws)
    {
        const std::size_t par = (epoch[d] + 1) & 1;
        epoch[d] += 1;
        auto &mb = mail[1 - d][d];
        std::sort(mb.buf[par].begin(), mb.buf[par].end());
        auto &q = eng->domainCtx(d).queue();
        for (Tick due : mb.buf[par]) {
            EXPECT_GE(due, ws); // may run on a worker thread
            q.scheduleMergedAt(due, [this, d] { act(d); });
        }
        mb.buf[par].clear();
        mb.minDue[par] = maxTick;
    }

    Tick
    pendingMinOf(int d) const
    {
        const std::size_t par = (epoch[d] + 1) & 1;
        return mail[d][1 - d].minDue[par];
    }

    struct Box
    {
        std::vector<Tick> buf[2];
        Tick minDue[2] = {maxTick, maxTick};
    };

    std::unique_ptr<ParallelEngine> eng;
    Box mail[2][2];
    std::uint64_t epoch[2] = {0, 0}; ///< merges done per domain
    std::vector<Tick> log[2];        ///< act() times per domain
    int remaining;
};

TEST(ParallelEngine, MailboxPingPongIsThreadCountInvariant)
{
    constexpr int hops = 25;
    PingPongFixture serial(1, hops);
    PingPongFixture threaded(2, hops);

    Tick endS = serial.eng->run(10'000);
    Tick endT = threaded.eng->run(10'000);

    EXPECT_EQ(endS, endT);
    EXPECT_EQ(serial.log[0], threaded.log[0]);
    EXPECT_EQ(serial.log[1], threaded.log[1]);

    // The token visits domains alternately, one hop apart in time.
    ASSERT_EQ(serial.log[0].size() + serial.log[1].size(),
              std::size_t(hops) + 1);
    EXPECT_EQ(serial.log[0].front(), Tick(1));
    EXPECT_EQ(serial.log[1].front(), Tick(1 + PingPongFixture::hop));
    EXPECT_EQ(endS, Tick(1 + hops * PingPongFixture::hop));
}

TEST(ParallelEngine, RunResumesAcrossCalls)
{
    // Work left in a mailbox when a run ends (posted but unmerged)
    // must be found by the next run's initial pending-min scan.
    PingPongFixture fx(2, 9);
    fx.eng->run(30); // cuts the ping-pong mid-flight
    std::size_t after = fx.log[0].size() + fx.log[1].size();
    EXPECT_LT(after, 10u);
    fx.eng->run(10'000);
    EXPECT_EQ(fx.log[0].size() + fx.log[1].size(), 10u);
}

} // namespace

/** @file Unit tests for command-line parsing. */

#include <gtest/gtest.h>

#include "sim/args.hh"

namespace
{

using gs::Args;

Args
parse(std::initializer_list<const char *> argv_list)
{
    std::vector<char *> argv;
    argv.push_back(const_cast<char *>("prog"));
    for (const char *a : argv_list)
        argv.push_back(const_cast<char *>(a));
    return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, ParsesKeyValue)
{
    auto args = parse({"--cpus=16", "--name=torus"});
    EXPECT_EQ(args.getInt("cpus", 0), 16);
    EXPECT_EQ(args.getString("name", ""), "torus");
}

TEST(Args, DefaultsWhenAbsent)
{
    auto args = parse({});
    EXPECT_EQ(args.getInt("cpus", 8), 8);
    EXPECT_DOUBLE_EQ(args.getDouble("scale", 1.5), 1.5);
    EXPECT_FALSE(args.has("cpus"));
}

TEST(Args, BareFlagIsTrue)
{
    auto args = parse({"--verbose"});
    EXPECT_TRUE(args.getBool("verbose", false));
    EXPECT_TRUE(args.has("verbose"));
}

TEST(Args, FalseSpellings)
{
    EXPECT_FALSE(parse({"--x=0"}).getBool("x", true));
    EXPECT_FALSE(parse({"--x=false"}).getBool("x", true));
    EXPECT_FALSE(parse({"--x=no"}).getBool("x", true));
    EXPECT_TRUE(parse({"--x=1"}).getBool("x", false));
}

TEST(Args, DoubleParsing)
{
    auto args = parse({"--frac=0.25"});
    EXPECT_DOUBLE_EQ(args.getDouble("frac", 0), 0.25);
}

} // namespace

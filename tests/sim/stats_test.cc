/** @file Unit tests for the statistics primitives. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hh"

namespace
{

using namespace gs::stats;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.total(), 15.0);
}

TEST(Average, ResetClears)
{
    Average a;
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Average, MinMaxTrackAfterReset)
{
    // The reset sentinels must be the full double range, or samples
    // beyond the old +/-1e300 sentinels would report them instead.
    Average a;
    a.sample(3.0);
    a.reset();
    a.sample(-7.0);
    EXPECT_DOUBLE_EQ(a.min(), -7.0);
    EXPECT_DOUBLE_EQ(a.max(), -7.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-1.0); // underflow -> first bucket
    h.sample(0.5);
    h.sample(9.5);
    h.sample(25.0); // overflow bucket
    EXPECT_EQ(h.buckets().front(), 2u);
    EXPECT_EQ(h.buckets().back(), 1u);
    EXPECT_EQ(h.summary().count(), 4u);
}

TEST(Histogram, UpperEdgeLandsInLastRealBucket)
{
    // The range is inclusive at both ends: sampling exactly the
    // upper edge belongs to the last real bucket, not overflow.
    Histogram h(0.0, 10.0, 10);
    h.sample(10.0);
    const auto &b = h.buckets();
    EXPECT_EQ(b.back(), 0u);
    EXPECT_EQ(b[b.size() - 2], 1u);
}

TEST(Histogram, QuantileApproximatesMedian)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Histogram, PercentileInterpolatesWithinBuckets)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i) + 0.5);
    // 100 samples, one per 1-wide bucket: pNN sits at bucket NN's
    // upper edge under the inclusive-upper-edge interpolation.
    EXPECT_NEAR(h.percentile(0.50), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(0.95), 95.0, 1.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 1.0);
}

TEST(Histogram, PercentileEdges)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(3.0);
    h.sample(7.0);
    // q clamps: p0 stays at the range floor, p100 reaches the last
    // populated bucket's upper edge.
    EXPECT_GE(h.percentile(0.0), 0.0);
    EXPECT_LE(h.percentile(0.0), 4.0);
    EXPECT_GE(h.percentile(1.0), 7.0);
    EXPECT_LE(h.percentile(1.0), 8.0);
    EXPECT_EQ(h.percentile(-0.5), h.percentile(0.0));
    EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
}

TEST(Histogram, PercentileOfEmptyIsNaN)
{
    // NaN, not 0: an empty histogram has no percentiles, and a 0
    // would read as a (wrong) measurement downstream.
    Histogram h(0.0, 10.0, 10);
    EXPECT_TRUE(std::isnan(h.percentile(0.5)));
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(Histogram, PercentileOverflowInterpolatesToMax)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(50.0);
    h.sample(90.0);
    // Both samples live in the overflow bucket; the tail percentile
    // interpolates between the range's upper edge and the observed
    // max instead of reporting a value the data never reached.
    double p99 = h.percentile(0.99);
    EXPECT_GE(p99, 10.0);
    EXPECT_LE(p99, 90.0);
    EXPECT_NEAR(h.percentile(1.0), 90.0, 1e-9);
}

TEST(Histogram, ResetClearsCountsAndSummary)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(5.0);
    h.reset();
    EXPECT_EQ(h.summary().count(), 0u);
    EXPECT_TRUE(std::isnan(h.percentile(0.5)));
    h.sample(2.0);
    EXPECT_EQ(h.summary().count(), 1u);
}

TEST(Utilization, FractionOfWindow)
{
    Utilization u;
    u.beginWindow(1000);
    u.addBusy(250);
    EXPECT_DOUBLE_EQ(u.fraction(2000), 0.25);
}

TEST(Utilization, ClampsToOne)
{
    Utilization u;
    u.beginWindow(0);
    u.addBusy(5000);
    EXPECT_DOUBLE_EQ(u.fraction(1000), 1.0);
}

TEST(Utilization, EmptyWindowIsZero)
{
    Utilization u;
    u.beginWindow(100);
    EXPECT_DOUBLE_EQ(u.fraction(100), 0.0);
}

TEST(TimeSeries, SamplesEveryProbe)
{
    TimeSeries ts;
    double x = 1.0;
    ts.add("x", [&] { return x; });
    ts.add("2x", [&] { return 2 * x; });
    ts.sample();
    x = 3.0;
    ts.sample();
    ASSERT_EQ(ts.series().size(), 2u);
    EXPECT_EQ(ts.sampleCount(), 2u);
    EXPECT_DOUBLE_EQ(ts.series()[0].values[1], 3.0);
    EXPECT_DOUBLE_EQ(ts.series()[1].values[0], 2.0);
    EXPECT_EQ(ts.series()[1].name, "2x");
}

} // namespace

/** @file Unit tests for the telemetry registry/sampler/exporters. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/context.hh"
#include "sim/stats.hh"
#include "sim/telemetry.hh"

namespace
{

using namespace gs;
using namespace gs::telem;

TEST(TelemetryPath, JoinsWithDots)
{
    EXPECT_EQ(path("node", 12, "router"), "node.12.router");
    EXPECT_EQ(path("net"), "net");
    EXPECT_EQ(path("port", 'E', "vc", 1), "port.E.vc.1");
}

TEST(Registry, RegistersEveryKind)
{
    stats::Counter c;
    c.inc(7);
    std::uint64_t raw = 41;
    stats::Average avg;
    avg.sample(2.0);
    avg.sample(4.0);
    stats::Histogram hist(0.0, 10.0, 5);
    hist.sample(3.0);

    Registry reg;
    reg.addCounter("a.counter", c);
    reg.addCounter("a.raw", raw);
    reg.addGauge("a.gauge", [] { return 2.5; });
    reg.addAverage("b.avg", avg);
    reg.addHistogram("b.hist", hist);

    EXPECT_EQ(reg.size(), 5u);
    EXPECT_TRUE(reg.has("a.raw"));
    EXPECT_FALSE(reg.has("a.missing"));
    EXPECT_DOUBLE_EQ(reg.value("a.counter"), 7.0);
    EXPECT_DOUBLE_EQ(reg.value("a.gauge"), 2.5);
    EXPECT_DOUBLE_EQ(reg.value("b.avg"), 3.0);

    // The registry holds pointers: later increments are visible.
    raw += 1;
    EXPECT_DOUBLE_EQ(reg.value("a.raw"), 42.0);
}

TEST(Registry, PathsAreSortedAndPrefixFiltered)
{
    std::uint64_t v = 0;
    Registry reg;
    reg.addCounter("node.1.flits", v);
    reg.addCounter("node.0.flits", v);
    reg.addCounter("net.injected", v);

    auto all = reg.paths();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0], "net.injected");
    EXPECT_EQ(all[1], "node.0.flits");
    EXPECT_EQ(all[2], "node.1.flits");

    auto nodes = reg.paths("node.");
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_EQ(nodes[0], "node.0.flits");
}

TEST(RegistryDeath, DuplicatePathIsFatal)
{
    std::uint64_t v = 0;
    Registry reg;
    reg.addCounter("x.y", v);
    EXPECT_EXIT(reg.addCounter("x.y", v),
                ::testing::ExitedWithCode(1),
                "duplicate telemetry path: x.y");
}

TEST(RegistryDeath, UnknownPathIsFatal)
{
    Registry reg;
    EXPECT_EXIT(reg.value("no.such"), ::testing::ExitedWithCode(1),
                "unknown telemetry path: no.such");
}

TEST(Registry, PercentileSuffixQueriesHistogram)
{
    stats::Histogram hist(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        hist.sample(static_cast<double>(i) + 0.5);

    Registry reg;
    reg.addHistogram("lat.ns", hist);

    EXPECT_NEAR(reg.value("lat.ns.p50"), 50.0, 1.0);
    EXPECT_NEAR(reg.value("lat.ns.p95"), 95.0, 1.0);
    EXPECT_NEAR(reg.value("lat.ns.p99"), 99.0, 1.0);
    // Fractional percentiles spell the decimal point as '_'.
    EXPECT_NEAR(reg.value("lat.ns.p99_5"), 99.5, 1.0);
    // The pNN view never shadows a real entry: the plain path still
    // answers with the histogram's scalar summary (its mean).
    EXPECT_NEAR(reg.value("lat.ns"), 50.0, 1.0);
}

TEST(Registry, PercentileOfEmptyHistogramIsNaN)
{
    stats::Histogram hist(0.0, 100.0, 100);
    Registry reg;
    reg.addHistogram("lat.ns", hist);
    EXPECT_TRUE(std::isnan(reg.value("lat.ns.p99")));
}

TEST(RegistryDeath, PercentileOnNonHistogramIsFatal)
{
    stats::Counter c;
    Registry reg;
    reg.addCounter("hits", c);
    EXPECT_EXIT(reg.value("hits.p50"), ::testing::ExitedWithCode(1),
                "percentile query on non-histogram telemetry path: "
                "hits.p50");
}

TEST(RegistryDeath, PercentileOutOfRangeIsFatal)
{
    stats::Histogram hist(0.0, 100.0, 100);
    hist.sample(1.0);
    Registry reg;
    reg.addHistogram("lat.ns", hist);
    EXPECT_EXIT(reg.value("lat.ns.p200"),
                ::testing::ExitedWithCode(1),
                "percentile out of range in telemetry query");
}

TEST(RegistryDeath, PercentileOnUnknownStemIsFatal)
{
    Registry reg;
    EXPECT_EXIT(reg.value("no.such.p50"),
                ::testing::ExitedWithCode(1),
                "unknown telemetry path: no.such.p50");
}

TEST(Sampler, SamplesOnCadence)
{
    SimContext ctx;
    std::uint64_t flits = 0;
    Registry reg;
    reg.addCounter("flits", flits);

    Sampler sampler(ctx, reg, 100);
    sampler.watch("flits");
    sampler.start();

    // +3 flits in the first interval, +5 in the second.
    ctx.queue().scheduleAt(50, [&] { flits += 3; });
    ctx.queue().scheduleAt(150, [&] { flits += 5; });
    ctx.queue().runUntil(250);

    ASSERT_EQ(sampler.times().size(), 2u);
    EXPECT_EQ(sampler.times()[0], Tick(100));
    EXPECT_EQ(sampler.times()[1], Tick(200));
    const auto &s = sampler.series().front();
    EXPECT_DOUBLE_EQ(s.values[0], 3.0);
    EXPECT_DOUBLE_EQ(s.values[1], 8.0);
}

TEST(Sampler, RateModeScalesDeltas)
{
    SimContext ctx;
    std::uint64_t busy = 0;
    Registry reg;
    reg.addCounter("busy", busy);

    // scale 2.0 over a 100-tick interval: delta * 2 / 100.
    Sampler sampler(ctx, reg, 100);
    sampler.watchRate("busy", 2.0);
    sampler.start();

    ctx.queue().scheduleAt(10, [&] { busy += 25; });
    ctx.queue().scheduleAt(110, [&] { busy += 50; });
    ctx.queue().runUntil(200);

    const auto &s = sampler.series().front();
    ASSERT_EQ(s.values.size(), 2u);
    EXPECT_DOUBLE_EQ(s.values[0], 0.5);
    EXPECT_DOUBLE_EQ(s.values[1], 1.0);
}

TEST(Sampler, StopEndsTheSeries)
{
    SimContext ctx;
    std::uint64_t v = 0;
    Registry reg;
    reg.addCounter("v", v);

    Sampler sampler(ctx, reg, 100);
    sampler.watch("v");
    sampler.start();
    ctx.queue().runUntil(300);
    sampler.stop();
    ctx.queue().runUntil(1000);
    EXPECT_EQ(sampler.times().size(), 3u);
}

TEST(Sampler, StopFlushesFinalPartialInterval)
{
    SimContext ctx;
    std::uint64_t busy = 0;
    Registry reg;
    reg.addCounter("busy", busy);

    Sampler sampler(ctx, reg, 100);
    sampler.watchRate("busy", 1.0);
    sampler.start();

    // One full interval (+40), then 50 ticks of tail (+30) that no
    // periodic sample covers. stop() must flush the tail, with the
    // rate scaled to the 50-tick window actually covered.
    ctx.queue().scheduleAt(60, [&] { busy += 40; });
    ctx.queue().scheduleAt(120, [&] { busy += 30; });
    ctx.queue().runUntil(150);
    sampler.stop();

    const auto &s = sampler.series().front();
    ASSERT_EQ(sampler.times().size(), 2u);
    EXPECT_EQ(sampler.times()[0], Tick(100));
    EXPECT_EQ(sampler.times()[1], Tick(150));
    EXPECT_DOUBLE_EQ(s.values[0], 0.4);
    EXPECT_DOUBLE_EQ(s.values[1], 0.6); // 30 flits / 50 ticks
}

TEST(Sampler, StopOnIntervalEdgeAddsNothing)
{
    SimContext ctx;
    std::uint64_t v = 0;
    Registry reg;
    reg.addCounter("v", v);

    Sampler sampler(ctx, reg, 100);
    sampler.watch("v");
    sampler.start();
    ctx.queue().runUntil(200);
    sampler.stop(); // exactly on a sample edge: nothing to flush
    EXPECT_EQ(sampler.times().size(), 2u);

    sampler.stop(); // idempotent
    EXPECT_EQ(sampler.times().size(), 2u);
}

TEST(Sampler, WatchPrefixSelectsSubtree)
{
    SimContext ctx;
    std::uint64_t v = 0;
    Registry reg;
    reg.addCounter("node.0.flits", v);
    reg.addCounter("node.1.flits", v);
    reg.addCounter("net.injected", v);

    Sampler sampler(ctx, reg, 100);
    EXPECT_EQ(sampler.watchPrefix("node."), 2);
    EXPECT_EQ(sampler.series().size(), 2u);
}

TEST(TraceWriter, EmitsChromeTraceJson)
{
    TraceWriter tw;
    tw.counter(2'000'000, "util", 0.5);
    tw.instant(3'000'000, "RdReq", 4);
    tw.complete(1'000'000, 500'000, "txn", 1);

    std::ostringstream os;
    tw.write(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"displayTimeUnit\":\"ns\""),
              std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    // ts converts ps -> us.
    EXPECT_NE(out.find("\"ts\":2"), std::string::npos);
    EXPECT_NE(out.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(out.find("\"tid\":4"), std::string::npos);
}

TEST(TraceWriter, CapCountsDrops)
{
    TraceWriter tw(2);
    tw.instant(1, "a", 0);
    tw.instant(2, "b", 0);
    tw.instant(3, "c", 0);
    EXPECT_EQ(tw.size(), 2u);
    EXPECT_EQ(tw.dropped(), 1u);
}

TEST(Export, JsonCarriesStatsAndSeries)
{
    SimContext ctx;
    std::uint64_t flits = 9;
    stats::Average lat;
    lat.sample(100.0);
    Registry reg;
    reg.addCounter("link.flits", flits);
    reg.addAverage("latency_ns", lat);
    reg.addGauge("bad", [] { return std::nan(""); });

    Sampler sampler(ctx, reg, 100);
    sampler.watch("link.flits");
    sampler.start();
    ctx.queue().runUntil(200);

    std::ostringstream os;
    exportJson(os, reg, &sampler, ctx.now());
    const std::string out = os.str();
    EXPECT_NE(out.find("\"schema\":\"gs-telemetry-1\""),
              std::string::npos);
    EXPECT_NE(out.find("\"now_ps\":200"), std::string::npos);
    EXPECT_NE(out.find("\"link.flits\":9"), std::string::npos);
    EXPECT_NE(out.find("\"count\":1"), std::string::npos);
    EXPECT_NE(out.find("\"interval_ps\":100"), std::string::npos);
    EXPECT_NE(out.find("\"link.flits\":[9,9]"), std::string::npos);
    // Non-finite gauges become JSON null, never NaN text.
    EXPECT_NE(out.find("\"bad\":null"), std::string::npos);
    EXPECT_EQ(out.find("nan"), std::string::npos);
}

TEST(Export, CsvListsScalars)
{
    std::uint64_t v = 3;
    Registry reg;
    reg.addCounter("a.b", v);
    reg.addGauge("a.c", [] { return 1.5; });

    std::ostringstream os;
    exportCsv(os, reg);
    EXPECT_EQ(os.str(),
              "path,kind,value\na.b,counter,3\na.c,gauge,1.5\n");
}

TEST(Export, SeriesCsvIsWide)
{
    SimContext ctx;
    std::uint64_t v = 1;
    Registry reg;
    reg.addCounter("x", v);
    Sampler sampler(ctx, reg, 50);
    sampler.watch("x");
    sampler.start();
    ctx.queue().runUntil(100);

    std::ostringstream os;
    exportSeriesCsv(os, sampler);
    EXPECT_EQ(os.str(), "t_ps,x\n50,1\n100,1\n");
}

TEST(Export, IdenticalStateExportsIdenticalBytes)
{
    auto render = [] {
        SimContext ctx;
        std::uint64_t flits = 0;
        Registry reg;
        reg.addCounter("link.flits", flits);
        Sampler sampler(ctx, reg, 100);
        sampler.watchRate("link.flits", 1.0 / 3.0);
        sampler.start();
        for (Tick t = 10; t < 500; t += 70)
            ctx.queue().scheduleAt(t, [&] { flits += 7; });
        ctx.queue().runUntil(500);
        std::ostringstream os;
        exportJson(os, reg, &sampler, ctx.now());
        return os.str();
    };
    EXPECT_EQ(render(), render());
}

TEST(Export, WallClockGaugesAreReadableButNotExported)
{
    // par.barrier_wait_frac depends on host timing: it must stay
    // queryable for live diagnostics but never reach a snapshot
    // file, or byte-identical re-runs would diverge.
    Registry reg;
    std::uint64_t flits = 3;
    reg.addCounter("link.flits", flits);
    reg.addWallClockGauge("par.barrier_wait_frac", [] { return 0.25; });

    EXPECT_DOUBLE_EQ(reg.value("par.barrier_wait_frac"), 0.25);

    std::ostringstream js, csv;
    exportJson(js, reg, nullptr, 0);
    exportCsv(csv, reg);
    EXPECT_EQ(js.str().find("barrier_wait_frac"), std::string::npos);
    EXPECT_EQ(csv.str().find("barrier_wait_frac"), std::string::npos);
    EXPECT_NE(js.str().find("link.flits"), std::string::npos);
    EXPECT_NE(csv.str().find("link.flits"), std::string::npos);
}

} // namespace

/**
 * @file
 * Zero-steady-state-allocation tests for the event kernel and the
 * packet pool.
 *
 * The calendar queue + InlineFn rewrite exists so that scheduling and
 * firing events allocates nothing once the structures are warm, and
 * the PacketPool so that packet flight recycles slots instead of
 * allocating. These tests pin that property with a global operator
 * new/delete override that counts every heap allocation in the
 * process. The file is its own test binary (see tests/CMakeLists.txt)
 * precisely because the override is global.
 *
 * Under sanitizer builds (GS_SANITIZE) the runtime intercepts the
 * allocator and allocates internally, so the exact-zero assertions
 * are skipped; the functional behavior is still exercised.
 */

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "net/network.hh"
#include "net/packet.hh"
#include "net/packet_pool.hh"
#include "sim/event_queue.hh"
#include "sim/parallel.hh"
#include "topology/torus.hh"

namespace
{

// Thread-local so the parallel-engine test below can take a
// per-worker baseline and delta without any cross-thread races; the
// single-threaded tests only ever see the main thread's counter.
thread_local std::uint64_t g_allocs = 0;

} // namespace

void *
operator new(std::size_t n)
{
    g_allocs += 1;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    g_allocs += 1;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace
{

using gs::EventQueue;
using gs::Tick;

/** Allocations observed while running @p body. */
template <typename F>
std::uint64_t
allocsDuring(F &&body)
{
    const std::uint64_t before = g_allocs;
    body();
    return g_allocs - before;
}

TEST(AllocCount, OverrideIsLive)
{
    // Sanity: the counting override is actually linked in. Call the
    // allocation function directly — a new-expression paired with an
    // immediate delete may legally be elided entirely.
    const std::uint64_t delta = allocsDuring([] {
        void *p = ::operator new(16);
        ::operator delete(p);
    });
    EXPECT_GE(delta, 1u);
}

TEST(AllocCount, WarmEventLoopAllocatesNothing)
{
    EventQueue eq;

    // A capture that fills the inline buffer exactly: a reference, a
    // pointer and six 8-byte ids — 64 bytes, the InlineFn capacity.
    std::uint64_t sink[4] = {0, 0, 0, 0};
    std::uint64_t a = 1, b = 2, c = 3, d = 4, e = 5, f = 6;
    auto bigCapture = [&eq, ptr = &sink[0], a, b, c, d, e, f] {
        *ptr += a + b + c + d + e + f;
        (void)eq;
    };
    static_assert(sizeof(bigCapture) == gs::InlineFn::inlineCapacity,
                  "capture sized to fill the whole inline buffer");
    static_assert(gs::InlineFn::fitsInline<decltype(bigCapture)>(),
                  "hot-path capture must stay inline");

    // Warm-up: walk the window across the whole bucket ring once so
    // every bucket's vector owns steady-state capacity (clear()
    // keeps capacity, so one lap is enough forever after).
    for (int i = 0; i < 1100; ++i) {
        eq.schedule(EventQueue::bucketWidth, bigCapture);
        eq.step();
    }

    const std::uint64_t delta = allocsDuring([&] {
        for (int i = 0; i < 10000; ++i) {
            eq.schedule(1, bigCapture);
            eq.step();
        }
    });

#ifdef GS_SANITIZE
    GTEST_SKIP() << "sanitizer runtime owns the allocator; counted "
                 << delta << " allocations";
#else
    EXPECT_EQ(delta, 0u) << "warm schedule/fire loop must not touch "
                            "the heap";
#endif
    EXPECT_EQ(sink[0], 21u * 10000u + 21u * 1100u);
}

TEST(AllocCount, WarmBurstSchedulingAllocatesNothing)
{
    EventQueue eq;
    std::uint64_t fired = 0;

    // Warm every ring bucket to the burst's high-water capacity:
    // 64 same-tick events, one bucket per lap step, a full lap.
    for (int i = 0; i < 1100; ++i) {
        for (int k = 0; k < 64; ++k)
            eq.schedule(EventQueue::bucketWidth, [&fired] {
                fired += 1;
            });
        eq.runUntil();
    }
    const std::uint64_t warmFired = fired;

    auto burst = [&] {
        for (int k = 0; k < 64; ++k)
            eq.schedule(static_cast<Tick>(1 + 7 * k), [&fired] {
                fired += 1;
            });
        eq.runUntil();
    };
    const std::uint64_t delta = allocsDuring([&] {
        for (int i = 0; i < 100; ++i)
            burst();
    });

#ifdef GS_SANITIZE
    GTEST_SKIP() << "sanitizer build; counted " << delta;
#else
    EXPECT_EQ(delta, 0u);
#endif
    EXPECT_EQ(fired, warmFired + 64u * 100u);
}

TEST(AllocCount, WarmPacketPoolAllocatesNothing)
{
    gs::net::PacketPool pool;
    gs::net::Packet pkt;
    pkt.src = 0;
    pkt.dst = 1;
    pkt.flits = 3;

    // Warm: 32 slots plus freelist/live-bitmap capacity.
    std::vector<gs::net::PacketHandle> held;
    for (int i = 0; i < 32; ++i)
        held.push_back(pool.acquire(pkt));
    for (auto h : held)
        pool.release(h);
    held.clear();
    held.reserve(32);

    const std::uint64_t delta = allocsDuring([&] {
        for (int round = 0; round < 10000; ++round) {
            for (int i = 0; i < 16; ++i)
                held.push_back(pool.acquire(pkt));
            for (auto h : held)
                pool.release(h);
            held.clear();
        }
    });

#ifdef GS_SANITIZE
    GTEST_SKIP() << "sanitizer build; counted " << delta;
#else
    EXPECT_EQ(delta, 0u) << "warm acquire/release churn must recycle "
                            "slots, not allocate";
#endif
    EXPECT_EQ(pool.stats().reused, 10000u * 16u);
    EXPECT_EQ(pool.capacity(), 32u);
}

/**
 * The parallel engine's steady state must be allocation-free on
 * every worker thread: local event flow, cross-domain mailbox posts,
 * barrier merges and packet-pool recycling all reuse warm capacity.
 * A token ring over a partitioned 4x2 torus (every hop crosses a
 * domain boundary) drives all of those paths at once; each domain
 * records its worker's thread-local allocation counter at a warm
 * tick and again at the deadline, and the deltas must be zero.
 */
TEST(AllocCount, ParallelSteadyStateAllocatesNothingPerWorker)
{
    using gs::NodeId;
    using gs::SimContext;

    constexpr int w = 4, h = 2, nodes = w * h;
    SimContext mainCtx;
    gs::topo::Torus2D topo(w, h);
    gs::net::Network net(mainCtx, topo,
                         gs::net::NetworkParams::gs1280());

    gs::ParallelEngine::Config cfg;
    cfg.domains = w;
    cfg.threads = w;
    cfg.lookahead = net.conservativeLookahead();
    gs::ParallelEngine eng(cfg);

    std::vector<int> dom(nodes);
    std::vector<SimContext *> dctx;
    for (NodeId n = 0; n < nodes; ++n)
        dom[std::size_t(n)] = topo.xOf(n);
    for (int d = 0; d < w; ++d)
        dctx.push_back(&eng.domainCtx(d));
    net.setPartition(std::move(dom), std::move(dctx));
    eng.setMergeHook(
        [&net](int d, Tick ws) { net.mergeFor(d, ws); });
    eng.setPendingMinHook([&net](int d) { return net.pendingMinOf(d); });
    eng.setPublishHook([&net](int d) { net.publishFor(d); });

    // Every delivery re-injects to the next node; (n+1) % nodes
    // always lands in a different column, so every hop exercises the
    // mailbox path. The handler runs on the owning worker and the
    // re-injected packet's source is that same domain.
    for (NodeId n = 0; n < nodes; ++n) {
        net.setHandler(n, [&net, n](const gs::net::Packet &) {
            gs::net::Packet q;
            q.src = n;
            q.dst = NodeId((n + 1) % nodes);
            net.inject(q);
        });
    }
    for (NodeId n = 0; n < nodes; ++n) {
        gs::net::Packet p;
        p.src = n;
        p.dst = NodeId((n + 1) % nodes);
        net.inject(p);
    }

    // Warm past multiple full calendar-ring laps (horizon ticks
    // each) so every ring bucket, mailbox parity buffer and pool
    // freelist owns steady-state capacity, then measure over a
    // multi-lap window. The allocation counter is thread-local and
    // work-stealing moves domains between workers, so sampling runs
    // per WORKER through the epoch hook (which every worker executes
    // every epoch, on its own thread): a simulation event flags the
    // end of warmup, each worker then takes its own baseline once
    // and refreshes its own end sample every epoch after.
    const Tick warmTick = 3 * EventQueue::horizon;
    const Tick endTick = 6 * EventQueue::horizon;
    std::atomic<bool> warm{false};
    eng.domainCtx(0).queue().scheduleAt(
        warmTick, [&warm] { warm.store(true, std::memory_order_release); });
    std::array<std::uint64_t, w> base{}, end{};
    std::array<bool, w> sampled{};
    eng.setEpochHook([&](int t, std::uint64_t) {
        if (!warm.load(std::memory_order_acquire))
            return;
        if (!sampled[std::size_t(t)]) {
            base[std::size_t(t)] = g_allocs;
            sampled[std::size_t(t)] = true;
            return;
        }
        end[std::size_t(t)] = g_allocs;
    });

    eng.run(endTick);

    ASSERT_GT(net.stats().deliveredPackets, 1000u);
    // Every delivery traversed exactly one cross-column link (posted
    // arrivals only exceed deliveries by packets still in flight).
    EXPECT_GE(net.crossArrivalsPosted(),
              net.stats().deliveredPackets);
#ifdef GS_SANITIZE
    GTEST_SKIP() << "sanitizer runtime owns the allocator";
#else
    for (int t = 0; t < w; ++t) {
        ASSERT_TRUE(sampled[std::size_t(t)])
            << "worker " << t << " never reached a warm epoch";
        EXPECT_EQ(end[std::size_t(t)] - base[std::size_t(t)], 0u)
            << "worker " << t << " allocated in steady state";
    }
#endif
}

} // namespace

/**
 * @file
 * Zero-steady-state-allocation tests for the event kernel and the
 * packet pool.
 *
 * The calendar queue + InlineFn rewrite exists so that scheduling and
 * firing events allocates nothing once the structures are warm, and
 * the PacketPool so that packet flight recycles slots instead of
 * allocating. These tests pin that property with a global operator
 * new/delete override that counts every heap allocation in the
 * process. The file is its own test binary (see tests/CMakeLists.txt)
 * precisely because the override is global.
 *
 * Under sanitizer builds (GS_SANITIZE) the runtime intercepts the
 * allocator and allocates internally, so the exact-zero assertions
 * are skipped; the functional behavior is still exercised.
 */

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "net/packet.hh"
#include "net/packet_pool.hh"
#include "sim/event_queue.hh"

namespace
{

std::uint64_t g_allocs = 0; // single-threaded tests: plain counter

} // namespace

void *
operator new(std::size_t n)
{
    g_allocs += 1;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    g_allocs += 1;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace
{

using gs::EventQueue;
using gs::Tick;

/** Allocations observed while running @p body. */
template <typename F>
std::uint64_t
allocsDuring(F &&body)
{
    const std::uint64_t before = g_allocs;
    body();
    return g_allocs - before;
}

TEST(AllocCount, OverrideIsLive)
{
    // Sanity: the counting override is actually linked in. Call the
    // allocation function directly — a new-expression paired with an
    // immediate delete may legally be elided entirely.
    const std::uint64_t delta = allocsDuring([] {
        void *p = ::operator new(16);
        ::operator delete(p);
    });
    EXPECT_GE(delta, 1u);
}

TEST(AllocCount, WarmEventLoopAllocatesNothing)
{
    EventQueue eq;

    // A capture that fills the inline buffer exactly: a reference, a
    // pointer and six 8-byte ids — 64 bytes, the InlineFn capacity.
    std::uint64_t sink[4] = {0, 0, 0, 0};
    std::uint64_t a = 1, b = 2, c = 3, d = 4, e = 5, f = 6;
    auto bigCapture = [&eq, ptr = &sink[0], a, b, c, d, e, f] {
        *ptr += a + b + c + d + e + f;
        (void)eq;
    };
    static_assert(sizeof(bigCapture) == gs::InlineFn::inlineCapacity,
                  "capture sized to fill the whole inline buffer");
    static_assert(gs::InlineFn::fitsInline<decltype(bigCapture)>(),
                  "hot-path capture must stay inline");

    // Warm-up: walk the window across the whole bucket ring once so
    // every bucket's vector owns steady-state capacity (clear()
    // keeps capacity, so one lap is enough forever after).
    for (int i = 0; i < 1100; ++i) {
        eq.schedule(EventQueue::bucketWidth, bigCapture);
        eq.step();
    }

    const std::uint64_t delta = allocsDuring([&] {
        for (int i = 0; i < 10000; ++i) {
            eq.schedule(1, bigCapture);
            eq.step();
        }
    });

#ifdef GS_SANITIZE
    GTEST_SKIP() << "sanitizer runtime owns the allocator; counted "
                 << delta << " allocations";
#else
    EXPECT_EQ(delta, 0u) << "warm schedule/fire loop must not touch "
                            "the heap";
#endif
    EXPECT_EQ(sink[0], 21u * 10000u + 21u * 1100u);
}

TEST(AllocCount, WarmBurstSchedulingAllocatesNothing)
{
    EventQueue eq;
    std::uint64_t fired = 0;

    // Warm every ring bucket to the burst's high-water capacity:
    // 64 same-tick events, one bucket per lap step, a full lap.
    for (int i = 0; i < 1100; ++i) {
        for (int k = 0; k < 64; ++k)
            eq.schedule(EventQueue::bucketWidth, [&fired] {
                fired += 1;
            });
        eq.runUntil();
    }
    const std::uint64_t warmFired = fired;

    auto burst = [&] {
        for (int k = 0; k < 64; ++k)
            eq.schedule(static_cast<Tick>(1 + 7 * k), [&fired] {
                fired += 1;
            });
        eq.runUntil();
    };
    const std::uint64_t delta = allocsDuring([&] {
        for (int i = 0; i < 100; ++i)
            burst();
    });

#ifdef GS_SANITIZE
    GTEST_SKIP() << "sanitizer build; counted " << delta;
#else
    EXPECT_EQ(delta, 0u);
#endif
    EXPECT_EQ(fired, warmFired + 64u * 100u);
}

TEST(AllocCount, WarmPacketPoolAllocatesNothing)
{
    gs::net::PacketPool pool;
    gs::net::Packet pkt;
    pkt.src = 0;
    pkt.dst = 1;
    pkt.flits = 3;

    // Warm: 32 slots plus freelist/live-bitmap capacity.
    std::vector<gs::net::PacketHandle> held;
    for (int i = 0; i < 32; ++i)
        held.push_back(pool.acquire(pkt));
    for (auto h : held)
        pool.release(h);
    held.clear();
    held.reserve(32);

    const std::uint64_t delta = allocsDuring([&] {
        for (int round = 0; round < 10000; ++round) {
            for (int i = 0; i < 16; ++i)
                held.push_back(pool.acquire(pkt));
            for (auto h : held)
                pool.release(h);
            held.clear();
        }
    });

#ifdef GS_SANITIZE
    GTEST_SKIP() << "sanitizer build; counted " << delta;
#else
    EXPECT_EQ(delta, 0u) << "warm acquire/release churn must recycle "
                            "slots, not allocate";
#endif
    EXPECT_EQ(pool.stats().reused, 10000u * 16u);
    EXPECT_EQ(pool.capacity(), 32u);
}

} // namespace

/** @file Unit tests for the xoshiro256** generator. */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "sim/random.hh"

namespace
{

using gs::Rng;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowZeroBoundYieldsZero)
{
    Rng rng(7);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(13);
    constexpr int buckets = 8;
    int counts[buckets] = {};
    constexpr int draws = 80000;
    for (int i = 0; i < draws; ++i)
        counts[rng.below(buckets)] += 1;
    for (int b = 0; b < buckets; ++b)
        EXPECT_NEAR(counts[b], draws / buckets, draws / buckets / 5);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, StreamSeedIsPureFunctionOfMasterAndIndex)
{
    // Counted streams: stream i's seed never depends on how many
    // other streams exist or in what order they are derived.
    const std::uint64_t master = 12345;
    std::vector<std::uint64_t> forward, reverse;
    for (std::uint64_t i = 0; i < 8; ++i)
        forward.push_back(Rng::deriveSeed(master, i));
    for (std::uint64_t i = 8; i-- > 0;)
        reverse.push_back(Rng::deriveSeed(master, i));
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(forward[i], reverse[7 - i]);
}

TEST(Rng, StreamsAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t master : {1ULL, 2ULL, 99ULL})
        for (std::uint64_t i = 0; i < 100; ++i)
            seeds.insert(Rng::deriveSeed(master, i));
    EXPECT_EQ(seeds.size(), 300u);
}

TEST(Rng, StreamsAreStatisticallyIndependent)
{
    // Adjacent streams must not track each other.
    Rng a = Rng::stream(5, 0), b = Rng::stream(5, 1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, StreamMatchesDerivedSeed)
{
    Rng a = Rng::stream(77, 3);
    Rng b(Rng::deriveSeed(77, 3));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.next(), b.next());
}

} // namespace

/**
 * @file
 * Snapshot format tests (sim/checkpoint.hh): field round-trips,
 * section framing, and — the robustness contract — that corrupt,
 * truncated, or version-mismatched snapshots are rejected with a
 * clear error instead of being half-applied.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"

namespace
{

using namespace gs;

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + name;
}

/** A two-section snapshot with every field type in use. */
ckpt::Serializer
sampleSnapshot()
{
    ckpt::Serializer s;
    s.beginSection(ckpt::secMeta);
    s.put8(7);
    s.put16(0xbeef);
    s.put32(0xdeadbeefu);
    s.put64(0x0123456789abcdefull);
    s.putI32(-42);
    s.putI64(-7000000000ll);
    s.putBool(true);
    s.putF64(2.5);
    s.putStr("net.latency");
    s.endSection();

    s.beginSection(ckpt::secEvtq);
    ckpt::EventDesc d;
    d.kind = ckpt::NetTick;
    d.owner = 3;
    d.a = -1;
    d.b = 2;
    d.c = 3;
    d.u = 99;
    d.v = 100;
    s.putDesc(d);
    s.endSection();
    return s;
}

void
readSample(ckpt::Deserializer &d)
{
    ASSERT_TRUE(d.enterSection(ckpt::secMeta, "META")) << d.error();
    EXPECT_EQ(d.get8(), 7);
    EXPECT_EQ(d.get16(), 0xbeef);
    EXPECT_EQ(d.get32(), 0xdeadbeefu);
    EXPECT_EQ(d.get64(), 0x0123456789abcdefull);
    EXPECT_EQ(d.getI32(), -42);
    EXPECT_EQ(d.getI64(), -7000000000ll);
    EXPECT_TRUE(d.getBool());
    EXPECT_EQ(d.getF64(), 2.5);
    EXPECT_EQ(d.getStr(), "net.latency");
    d.leaveSection("META");

    ASSERT_TRUE(d.enterSection(ckpt::secEvtq, "EVTQ")) << d.error();
    ckpt::EventDesc e = d.getDesc();
    EXPECT_EQ(e.kind, ckpt::NetTick);
    EXPECT_EQ(e.owner, 3);
    EXPECT_EQ(e.a, -1);
    EXPECT_EQ(e.b, 2);
    EXPECT_EQ(e.c, 3);
    EXPECT_EQ(e.u, 99u);
    EXPECT_EQ(e.v, 100u);
    d.leaveSection("EVTQ");
    EXPECT_TRUE(d.ok()) << d.error();
}

TEST(CheckpointFormat, FieldRoundTripInMemory)
{
    auto s = sampleSnapshot();
    ckpt::Deserializer d(s.buffer().data(), s.size());
    readSample(d);
}

TEST(CheckpointFormat, FileRoundTripThroughHeader)
{
    const std::string path = tmpPath("ckpt_roundtrip.gsckpt");
    auto s = sampleSnapshot();
    std::string err;
    ASSERT_TRUE(ckpt::writeSnapshot(path, s, &err)) << err;

    std::vector<std::uint8_t> buf;
    std::size_t off = 0;
    ASSERT_TRUE(ckpt::readSnapshot(path, &buf, &off, &err)) << err;
    EXPECT_EQ(off, 16u); // 8-byte magic + version + reserved
    ckpt::Deserializer d(buf.data() + off, buf.size() - off);
    readSample(d);
    std::remove(path.c_str());
}

TEST(CheckpointFormat, AtomicWriteLeavesNoTmpFile)
{
    const std::string path = tmpPath("ckpt_atomic.gsckpt");
    auto s = sampleSnapshot();
    std::string err;
    ASSERT_TRUE(ckpt::writeSnapshot(path, s, &err)) << err;
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good()) << "tmp file left behind";
    std::remove(path.c_str());
}

TEST(CheckpointFormat, RejectsMissingFile)
{
    std::vector<std::uint8_t> buf;
    std::size_t off = 0;
    std::string err;
    EXPECT_FALSE(ckpt::readSnapshot(tmpPath("ckpt_nonexistent.gsckpt"),
                                    &buf, &off, &err));
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

TEST(CheckpointFormat, RejectsBadMagic)
{
    const std::string path = tmpPath("ckpt_badmagic.gsckpt");
    {
        std::ofstream f(path, std::ios::binary);
        f << "NOTACKPTxxxxxxxxyyyyyyyy";
    }
    std::vector<std::uint8_t> buf;
    std::size_t off = 0;
    std::string err;
    EXPECT_FALSE(ckpt::readSnapshot(path, &buf, &off, &err));
    EXPECT_NE(err.find("not a snapshot"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(CheckpointFormat, RejectsVersionMismatch)
{
    const std::string path = tmpPath("ckpt_badver.gsckpt");
    auto s = sampleSnapshot();
    std::string err;
    ASSERT_TRUE(ckpt::writeSnapshot(path, s, &err)) << err;
    {
        // Bump the little-endian version word at offset 8.
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(8);
        char v = static_cast<char>(ckpt::formatVersion + 1);
        f.write(&v, 1);
    }
    std::vector<std::uint8_t> buf;
    std::size_t off = 0;
    EXPECT_FALSE(ckpt::readSnapshot(path, &buf, &off, &err));
    EXPECT_NE(err.find("format version"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(CheckpointFormat, RejectsFileSmallerThanHeader)
{
    const std::string path = tmpPath("ckpt_tiny.gsckpt");
    {
        std::ofstream f(path, std::ios::binary);
        f << "GS12";
    }
    std::vector<std::uint8_t> buf;
    std::size_t off = 0;
    std::string err;
    EXPECT_FALSE(ckpt::readSnapshot(path, &buf, &off, &err));
    EXPECT_NE(err.find("smaller than the header"), std::string::npos)
        << err;
    std::remove(path.c_str());
}

TEST(CheckpointFormat, BitFlipInPayloadFailsSectionCrc)
{
    auto s = sampleSnapshot();
    // Flip one payload bit — every payload byte sits behind a frame,
    // so any single flip past the first frame must break a CRC (or
    // the frame fields themselves, caught as layout errors).
    std::vector<std::uint8_t> bytes(s.buffer().begin(),
                                    s.buffer().end());
    bytes[20] ^= 0x10; // inside the META payload
    ckpt::Deserializer d(bytes.data(), bytes.size());
    EXPECT_FALSE(d.enterSection(ckpt::secMeta, "META"));
    EXPECT_NE(d.error().find("CRC mismatch"), std::string::npos)
        << d.error();
}

TEST(CheckpointFormat, TruncatedSectionIsRejected)
{
    auto s = sampleSnapshot();
    std::vector<std::uint8_t> bytes(s.buffer().begin(),
                                    s.buffer().end());
    bytes.resize(20); // frame + 4 payload bytes: length claim unmet
    ckpt::Deserializer d(bytes.data(), bytes.size());
    EXPECT_FALSE(d.enterSection(ckpt::secMeta, "META"));
    EXPECT_NE(d.error().find("truncated"), std::string::npos)
        << d.error();
}

TEST(CheckpointFormat, WrongSectionOrderIsALayoutError)
{
    auto s = sampleSnapshot();
    ckpt::Deserializer d(s.buffer().data(), s.size());
    EXPECT_FALSE(d.enterSection(ckpt::secEvtq, "EVTQ"));
    EXPECT_NE(d.error().find("expected section"), std::string::npos)
        << d.error();
}

TEST(CheckpointFormat, UnderReadingASectionIsALayoutError)
{
    auto s = sampleSnapshot();
    ckpt::Deserializer d(s.buffer().data(), s.size());
    ASSERT_TRUE(d.enterSection(ckpt::secMeta, "META"));
    d.get8(); // leave the rest unread
    d.leaveSection("META");
    EXPECT_FALSE(d.ok());
    EXPECT_NE(d.error().find("unread byte"), std::string::npos)
        << d.error();
}

TEST(CheckpointFormat, ErrorsAreStickyAndGettersReturnZero)
{
    auto s = sampleSnapshot();
    ckpt::Deserializer d(s.buffer().data(), s.size());
    ASSERT_TRUE(d.enterSection(ckpt::secMeta, "META"));
    d.fail("injected failure");
    EXPECT_EQ(d.get64(), 0u);
    EXPECT_EQ(d.getStr(), "");
    EXPECT_FALSE(d.enterSection(ckpt::secEvtq, "EVTQ"));
    EXPECT_EQ(d.error(), "injected failure"); // first error wins
}

TEST(CheckpointFormat, ReadingPastSectionEndIsBounded)
{
    ckpt::Serializer s;
    s.beginSection(ckpt::secMeta);
    s.put8(1);
    s.endSection();
    s.beginSection(ckpt::secEvtq);
    s.put64(2);
    s.endSection();

    ckpt::Deserializer d(s.buffer().data(), s.size());
    ASSERT_TRUE(d.enterSection(ckpt::secMeta, "META"));
    d.get8();
    d.get64(); // would spill into the next section's frame
    EXPECT_FALSE(d.ok());
    EXPECT_NE(d.error().find("past section"), std::string::npos)
        << d.error();
}

} // namespace

/** @file Unit tests for the parallel deterministic sweep engine. */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace
{

using gs::Rng;
using gs::SweepPoint;
using gs::SweepRunner;

TEST(SweepRunner, ClampJobs)
{
    EXPECT_GE(SweepRunner::hardwareJobs(), 1);
    EXPECT_EQ(SweepRunner::clampJobs(0), SweepRunner::hardwareJobs());
    EXPECT_EQ(SweepRunner::clampJobs(-3), SweepRunner::hardwareJobs());
    EXPECT_EQ(SweepRunner::clampJobs(1), 1);
    EXPECT_EQ(SweepRunner::clampJobs(7), 7);
}

TEST(SweepRunner, ResultsInDeclaredOrder)
{
    SweepRunner runner(8);
    std::vector<int> points(100);
    std::iota(points.begin(), points.end(), 0);
    auto out = runner.map(points, [](int p, SweepPoint sp) {
        EXPECT_EQ(static_cast<std::size_t>(p), sp.index);
        return p * 3;
    });
    ASSERT_EQ(out.size(), points.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(SweepRunner, SerialAndParallelBitIdentical)
{
    // The determinism contract: stochastic point work driven by the
    // point's counted stream yields the same values at any jobs
    // count.
    auto sweep = [](int jobs) {
        SweepRunner runner(jobs, /*masterSeed=*/99);
        return runner.map(std::size_t(40), [](SweepPoint sp) {
            Rng rng = sp.rng();
            std::uint64_t sum = 0;
            for (int i = 0; i < 1000; ++i)
                sum += rng.below(1000);
            return sum;
        });
    };
    auto serial = sweep(1);
    auto parallel = sweep(8);
    EXPECT_EQ(serial, parallel);
}

TEST(SweepRunner, PointSeedsAreCounted)
{
    // A point's seed depends only on (masterSeed, index): declaring
    // more points never perturbs earlier ones, and the jobs count is
    // irrelevant.
    SweepRunner a(1, 7), b(8, 7), c(8, 8);
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(a.pointSeed(i), b.pointSeed(i));
        EXPECT_EQ(a.pointSeed(i), Rng::deriveSeed(7, i));
        EXPECT_NE(a.pointSeed(i), c.pointSeed(i));
    }
}

TEST(SweepRunner, EmptySweep)
{
    SweepRunner runner(4);
    auto out = runner.map(std::vector<int>{},
                          [](int, SweepPoint) { return 1; });
    EXPECT_TRUE(out.empty());
    auto out2 = runner.map(std::size_t(0), [](SweepPoint) { return 1; });
    EXPECT_TRUE(out2.empty());
}

TEST(SweepRunner, MorePointsThanThreads)
{
    SweepRunner runner(3);
    std::atomic<int> ran{0};
    auto out = runner.map(std::size_t(50), [&](SweepPoint sp) {
        ran.fetch_add(1);
        return sp.index;
    });
    EXPECT_EQ(ran.load(), 50);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i);
}

TEST(SweepRunner, ExceptionPropagates)
{
    SweepRunner runner(4);
    EXPECT_THROW(
        runner.map(std::size_t(20),
                   [](SweepPoint sp) -> int {
                       if (sp.index == 7)
                           throw std::runtime_error("point failed");
                       return 0;
                   }),
        std::runtime_error);
}

TEST(SweepRunner, SerialRunsOnCallingThread)
{
    // jobs=1 must reproduce the plain serial loop: declared order,
    // no worker threads.
    SweepRunner runner(1);
    const auto self = std::this_thread::get_id();
    std::vector<std::size_t> order;
    runner.map(std::size_t(10), [&](SweepPoint sp) {
        EXPECT_EQ(std::this_thread::get_id(), self);
        order.push_back(sp.index);
        return 0;
    });
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

} // namespace

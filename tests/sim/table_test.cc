/** @file Unit tests for table/CSV emission. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/table.hh"

namespace
{

using gs::Table;

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvEmission)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.14159, 0), "3");
    EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
    EXPECT_EQ(Table::num(-7), "-7");
}

TEST(Table, RowAccess)
{
    Table t({"a"});
    t.addRow({"v"});
    ASSERT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.row(0)[0], "v");
}

TEST(TableDeath, MismatchedRowWidthPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

} // namespace

/**
 * @file
 * The pre-calendar event queue, preserved verbatim for A/B testing.
 *
 * This is the simple (when, seq) min-heap the kernel shipped with
 * before the calendar-queue rewrite (src/sim/event_queue.hh). The
 * calendar's fire order is contractually identical to this heap's;
 * tests/sim/event_queue_ab_test.cc replays randomized schedules on
 * both and asserts equality. Lives in the test tree only — nothing in
 * src/ links it.
 */

#ifndef GS_TESTS_SIM_LEGACY_EVENT_QUEUE_HH
#define GS_TESTS_SIM_LEGACY_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace gs::test
{

/** The original heap-based event queue (reference implementation). */
class LegacyEventQueue
{
  public:
    using EventFn = std::function<void()>;

    LegacyEventQueue() = default;
    LegacyEventQueue(const LegacyEventQueue &) = delete;
    LegacyEventQueue &operator=(const LegacyEventQueue &) = delete;

    Tick now() const { return curTick; }

    std::size_t pending() const { return heap.size(); }

    bool empty() const { return heap.empty(); }

    std::uint64_t firedCount() const { return fired; }

    std::size_t peakPending() const { return peak; }

    void
    scheduleAt(Tick when, EventFn fn)
    {
        gs_assert(when >= curTick,
                  "event scheduled in the past: ", when, " < ", curTick);
        heap.push(Entry{when, nextSeq++, std::move(fn)});
        if (heap.size() > peak)
            peak = heap.size();
    }

    void
    schedule(Tick delay, EventFn fn)
    {
        scheduleAt(curTick + delay, std::move(fn));
    }

    bool
    step()
    {
        if (heap.empty())
            return false;
        Entry e = std::move(const_cast<Entry &>(heap.top()));
        heap.pop();
        curTick = e.when;
        fired += 1;
        e.fn();
        return true;
    }

    Tick
    runUntil(Tick limit = maxTick)
    {
        while (!heap.empty() && heap.top().when <= limit)
            step();
        if (curTick < limit && limit != maxTick)
            curTick = limit;
        return curTick;
    }

    Tick runFor(Tick duration) { return runUntil(curTick + duration); }

    void
    clear()
    {
        while (!heap.empty())
            heap.pop();
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t fired = 0;
    std::size_t peak = 0;
};

} // namespace gs::test

#endif // GS_TESTS_SIM_LEGACY_EVENT_QUEUE_HH

/**
 * @file
 * A/B equivalence: the calendar-queue EventQueue against the original
 * heap-based implementation (tests/sim/legacy_event_queue.hh).
 *
 * The kernel rewrite's contract is that fire order is *identical* to
 * a single (when, seq) min-heap: same-tick events fire in scheduling
 * order, step/runUntil/clear have the same semantics, and the
 * self-metrics (firedCount, peakPending) agree. These tests replay
 * identical randomized op programs — including events that schedule
 * children from inside their callbacks — on both queues and assert
 * the logs match element for element.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "legacy_event_queue.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace
{

using gs::Rng;
using gs::Tick;

/** What a replay observed: every fired event and the final counters. */
struct Trace
{
    std::vector<std::pair<std::uint64_t, Tick>> fires; ///< (id, tick)
    Tick finalNow = 0;
    std::uint64_t fired = 0;
    std::size_t peak = 0;
    std::size_t leftPending = 0;

    bool
    operator==(const Trace &o) const
    {
        return fires == o.fires && finalNow == o.finalNow &&
               fired == o.fired && peak == o.peak &&
               leftPending == o.leftPending;
    }
};

/**
 * Drive queue implementation @p Q through the op program generated
 * by @p seed. All randomness comes from the seeded Rng and all time
 * arithmetic from q.now(), so two implementations with identical
 * semantics see byte-identical programs; the first divergence skews
 * everything after it and the trace comparison catches it.
 */
template <typename Q>
Trace
replay(std::uint64_t seed, std::size_t ops)
{
    Q q;
    Trace t;
    std::uint64_t nextId = 0;

    // Child scheduling from inside a callback: purely a function of
    // the firing event's id, so both implementations spawn the same
    // children iff they fire the same events at the same ticks.
    std::function<void(std::uint64_t)> onFire =
        [&](std::uint64_t id) {
        t.fires.emplace_back(id, q.now());
        if (id % 7 == 3) {
            Tick delay = (id * 977) % (4 * gs::EventQueue::bucketWidth);
            std::uint64_t child = nextId++;
            q.schedule(delay, [&, child] { onFire(child); });
        }
    };

    Rng rng(seed);
    for (std::size_t i = 0; i < ops; ++i) {
        std::uint64_t roll = rng.below(100);
        if (roll < 55) {
            // Schedule: near (in-window), same-tick, or far (overflow).
            Tick delay;
            std::uint64_t shape = rng.below(10);
            if (shape == 0)
                delay = 0;
            else if (shape == 1)
                delay = gs::EventQueue::horizon +
                        rng.below(4 * gs::EventQueue::horizon);
            else
                delay = rng.below(8 * gs::EventQueue::bucketWidth);
            std::uint64_t id = nextId++;
            q.schedule(delay, [&, id] { onFire(id); });
        } else if (roll < 80) {
            q.step();
        } else if (roll < 90) {
            q.runFor(rng.below(2 * gs::EventQueue::bucketWidth));
        } else if (roll < 99) {
            q.runUntil(q.now() + rng.below(2 * gs::EventQueue::horizon));
        } else {
            q.clear();
        }
    }
    // Drain whatever survived so late-scheduled events are compared
    // too, then snapshot the counters.
    q.runUntil();
    t.finalNow = q.now();
    t.fired = q.firedCount();
    t.peak = q.peakPending();
    t.leftPending = q.pending();
    return t;
}

class EventQueueAbTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(EventQueueAbTest, RandomProgramMatchesLegacyHeap)
{
    const std::uint64_t master = 0xab5eed;
    const std::uint64_t seed = Rng::deriveSeed(master, GetParam());
    constexpr std::size_t ops = 20000;

    Trace calendar = replay<gs::EventQueue>(seed, ops);
    Trace legacy = replay<gs::test::LegacyEventQueue>(seed, ops);

    // Element-wise first so a divergence points at the exact event.
    ASSERT_EQ(calendar.fires.size(), legacy.fires.size());
    for (std::size_t i = 0; i < calendar.fires.size(); ++i) {
        ASSERT_EQ(calendar.fires[i], legacy.fires[i])
            << "fire order diverges at index " << i;
    }
    EXPECT_EQ(calendar.finalNow, legacy.finalNow);
    EXPECT_EQ(calendar.fired, legacy.fired);
    EXPECT_EQ(calendar.peak, legacy.peak);
    EXPECT_EQ(calendar.leftPending, legacy.leftPending);
    EXPECT_TRUE(calendar == legacy);
}

// Five seeds x 20k ops = 100k randomized operations total.
INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueAbTest,
                         ::testing::Values(0, 1, 2, 3, 4));

/** Same-tick FIFO under heavy ties: both sides, huge tie groups. */
TEST(EventQueueAbTest, SameTickFifoMatchesLegacy)
{
    const std::uint64_t seed = Rng::deriveSeed(0xab5eed, 99);
    auto program = [&](auto &q, auto &log) {
        Rng rng(seed);
        std::uint64_t id = 0;
        for (int round = 0; round < 200; ++round) {
            // Many events on few distinct ticks => long FIFO chains.
            for (int k = 0; k < 50; ++k) {
                Tick delay = rng.below(4) * gs::EventQueue::bucketWidth;
                std::uint64_t my = id++;
                q.schedule(delay, [&log, my] { log.push_back(my); });
            }
            q.runUntil();
        }
    };

    std::vector<std::uint64_t> a, b;
    gs::EventQueue qa;
    gs::test::LegacyEventQueue qb;
    program(qa, a);
    program(qb, b);
    ASSERT_EQ(a, b);
    EXPECT_EQ(qa.firedCount(), qb.firedCount());
    EXPECT_EQ(qa.peakPending(), qb.peakPending());
}

} // namespace

/** @file Clock/time conversion tests. */

#include <gtest/gtest.h>

#include "sim/types.hh"

namespace
{

using namespace gs;

TEST(Ticks, NsConversionsRoundTrip)
{
    EXPECT_EQ(nsToTicks(1.0), tickNs);
    EXPECT_EQ(nsToTicks(83.0), 83u * tickNs);
    EXPECT_DOUBLE_EQ(ticksToNs(nsToTicks(41.7)), 41.7);
    EXPECT_EQ(tickUs, 1000u * tickNs);
    EXPECT_EQ(tickMs, 1000u * tickUs);
}

TEST(Clock, FromMHz)
{
    Clock ev7 = Clock::fromMHz(1150.0);
    EXPECT_EQ(ev7.periodTicks(), 870u); // 869.6 ps rounded

    Clock link = Clock::fromMHz(767.0);
    EXPECT_EQ(link.periodTicks(), 1304u);
    EXPECT_NEAR(link.frequencyGHz(), 0.767, 0.001);
}

TEST(Clock, CycleTickConversions)
{
    Clock c(1000); // 1 GHz
    EXPECT_EQ(c.cyclesToTicks(5), 5000u);
    EXPECT_EQ(c.ticksToCycles(5999), 5u);
    EXPECT_EQ(c.ticksToCycles(6000), 6u);
}

TEST(Clock, NextEdgeAligns)
{
    Clock c(1000);
    EXPECT_EQ(c.nextEdge(0), 0u);
    EXPECT_EQ(c.nextEdge(1), 1000u);
    EXPECT_EQ(c.nextEdge(999), 1000u);
    EXPECT_EQ(c.nextEdge(1000), 1000u);
    EXPECT_EQ(c.nextEdge(1001), 2000u);
}

TEST(Clock, EdgeIsMonotone)
{
    Clock c(1304);
    Tick prev = 0;
    for (Tick t = 0; t < 20000; t += 317) {
        Tick edge = c.nextEdge(t);
        EXPECT_GE(edge, t);
        EXPECT_GE(edge, prev);
        EXPECT_EQ(edge % 1304, 0u);
        prev = edge;
    }
}

} // namespace

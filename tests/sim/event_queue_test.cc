/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace
{

using gs::EventQueue;
using gs::Tick;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.scheduleAt(5, [&order, i] { order.push_back(i); });
    eq.runUntil();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RelativeScheduleUsesCurrentTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(100, [&] {
        eq.schedule(50, [&] { seen = eq.now(); });
    });
    eq.runUntil();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { fired += 1; });
    eq.scheduleAt(1000, [&] { fired += 1; });
    eq.runUntil(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunForAdvancesRelative)
{
    EventQueue eq;
    eq.scheduleAt(10, [] {});
    eq.runUntil(50);
    eq.runFor(25);
    EXPECT_EQ(eq.now(), 75u);
}

TEST(EventQueue, EventsCanCascade)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            eq.schedule(1, chain);
    };
    eq.schedule(1, chain);
    eq.runUntil();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, ClearDropsPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { fired += 1; });
    eq.clear();
    eq.runUntil();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.scheduleAt(100, [] {});
    eq.runUntil();
    EXPECT_DEATH(eq.scheduleAt(50, [] {}), "past");
}

// --- Calendar-queue edge cases ------------------------------------
// The internals below (bucketWidth, horizon, the overflow heap) are
// implementation geometry; the behavior asserted is the public
// (when, seq) fire-order contract at exactly the seams where the
// calendar does something different from a plain heap.

TEST(EventQueueCalendar, SameTickFifoAcrossBucketBoundary)
{
    EventQueue eq;
    std::vector<int> order;
    const Tick a = EventQueue::bucketWidth - 1; // last tick, bucket 0
    const Tick b = EventQueue::bucketWidth;     // first tick, bucket 1
    // Interleave scheduling across the boundary; FIFO must hold
    // within each tick and time order across them.
    for (int i = 0; i < 4; ++i) {
        eq.scheduleAt(b, [&order, i] { order.push_back(10 + i); });
        eq.scheduleAt(a, [&order, i] { order.push_back(i); });
    }
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 10, 11, 12, 13}));
}

TEST(EventQueueCalendar, ScheduleAtNowFiresImmediately)
{
    EventQueue eq;
    eq.scheduleAt(12345, [] {});
    eq.runUntil();
    ASSERT_EQ(eq.now(), 12345u);

    bool hit = false;
    eq.scheduleAt(eq.now(), [&] { hit = true; });
    EXPECT_TRUE(eq.step());
    EXPECT_TRUE(hit);
    EXPECT_EQ(eq.now(), 12345u);
}

TEST(EventQueueCalendar, EventSchedulingIntoItsOwnTickRunsLast)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(500, [&] {
        order.push_back(0);
        // Lands on the firing tick, behind the already-queued 1.
        eq.schedule(0, [&order] { order.push_back(2); });
    });
    eq.scheduleAt(500, [&order] { order.push_back(1); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueueCalendar, ClearFromInsideACallbackMidBucket)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(100, [&] {
        fired += 1;
        eq.clear(); // drops the rest of this very bucket
    });
    eq.scheduleAt(100, [&] { fired += 1; });
    eq.scheduleAt(101, [&] { fired += 1; });
    eq.runUntil();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.empty());

    // The queue must stay fully usable after a mid-bucket clear.
    eq.scheduleAt(200, [&] { fired += 10; });
    eq.runUntil();
    EXPECT_EQ(fired, 11);
    EXPECT_EQ(eq.now(), 200u);
}

TEST(EventQueueCalendar, FarEventsParkInOverflowAndMigrate)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(1, [&order] { order.push_back(0); });
    // Far beyond the ring window: must wait in the overflow heap.
    const Tick far = 3 * EventQueue::horizon + 17;
    eq.scheduleAt(far, [&order] { order.push_back(1); });
    eq.scheduleAt(far, [&order] { order.push_back(2); }); // FIFO tie
    EXPECT_EQ(eq.overflowPending(), 2u);
    EXPECT_EQ(eq.ringPending(), 1u);

    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.now(), far);
    EXPECT_EQ(eq.overflowPending(), 0u);
    EXPECT_GE(eq.overflowMigrations(), 2u);
}

TEST(EventQueueCalendar, RunUntilExactlyOnBucketEdge)
{
    EventQueue eq;
    int fired = 0;
    const Tick edge = EventQueue::bucketWidth;
    eq.scheduleAt(edge - 1, [&] { fired += 1; });
    eq.scheduleAt(edge, [&] { fired += 1; });
    eq.scheduleAt(edge + 1, [&] { fired += 1; });
    eq.runUntil(edge);
    EXPECT_EQ(fired, 2); // limit is inclusive
    EXPECT_EQ(eq.now(), edge);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntil();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueueCalendar, NearEventAfterFarReanchorStillFiresFirst)
{
    EventQueue eq;
    std::vector<int> order;
    // A lone far-future event pulls the window forward when the ring
    // runs dry...
    const Tick far = 2 * EventQueue::horizon;
    eq.scheduleAt(far, [&order] { order.push_back(1); });
    eq.runUntil(10); // advances time only; window re-anchored at far
    ASSERT_EQ(eq.now(), 10u);
    // ...and an event landing before that window must still beat it.
    eq.scheduleAt(20, [&order] { order.push_back(0); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.now(), far);
}

TEST(EventQueueCalendar, MetricsCountFiredAndPeak)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.scheduleAt(static_cast<Tick>(10 + i), [] {});
    EXPECT_EQ(eq.peakPending(), 5u);
    eq.runUntil();
    EXPECT_EQ(eq.firedCount(), 5u);
    EXPECT_EQ(eq.peakPending(), 5u); // high-water mark persists
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueueCalendar, ClearReanchorsTheRing)
{
    EventQueue eq;
    int fired = 0;
    // Drag the calendar window deep into the future, then clear with
    // events still resident in ring AND overflow — the regression
    // was a ring left anchored at the old epoch after clear().
    const Tick far = 2 * EventQueue::horizon + 5;
    eq.scheduleAt(far, [&] { fired += 100; });
    eq.scheduleAt(far + EventQueue::horizon, [&] { fired += 100; });
    eq.runUntil(far - 1); // window now anchored near `far`
    eq.clear();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.ringPending(), 0u);
    EXPECT_EQ(eq.overflowPending(), 0u);

    // A post-clear near event must land in a live bucket, fire, and
    // fire exactly once; same-tick FIFO must survive the reset.
    std::vector<int> order;
    eq.scheduleAt(far + 1, [&] { order.push_back(0); });
    eq.scheduleAt(far + 1, [&] { order.push_back(1); });
    eq.scheduleAt(far + EventQueue::bucketWidth, [&] {
        order.push_back(2);
    });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), far + EventQueue::bucketWidth);
}

TEST(EventQueueWindow, DrainWindowFiresStrictlyBefore)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(10, [&] { order.push_back(10); });
    eq.scheduleAt(20, [&] { order.push_back(20); });
    eq.scheduleAt(30, [&] { order.push_back(30); });

    EXPECT_EQ(eq.drainWindow(20), 1u);
    EXPECT_EQ(order, (std::vector<int>{10}));
    // now() stays at the last fired event (not the window edge), so
    // the domain clock matches the serial engine after those events.
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.peekNext(), 20u);

    EXPECT_EQ(eq.drainWindow(31), 2u);
    EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
    EXPECT_EQ(eq.peekNext(), gs::maxTick);
    EXPECT_EQ(eq.drainWindow(1000), 0u);
}

TEST(EventQueueWindow, SyncTimeAdvancesWithoutFiring)
{
    EventQueue eq;
    int fired = 0;
    eq.syncTime(15);
    EXPECT_EQ(eq.now(), 15u);
    eq.schedule(5, [&] { fired += 1; }); // relative to synced time
    eq.runUntil();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueueWindow, MergedEventsBeatSameTickLocalEvents)
{
    EventQueue eq;
    std::vector<int> order;
    // Local events scheduled FIRST, merged events appended LAST —
    // the merge band must still fire first at the shared tick, the
    // order the serial engine gives arrivals/credits vs. tick work.
    eq.scheduleAt(100, [&] { order.push_back(2); });
    eq.scheduleAt(100, [&] { order.push_back(3); });
    eq.peekNext(); // sort the live bucket: exercises binary insert
    eq.scheduleMergedAt(100, [&] { order.push_back(0); });
    eq.scheduleMergedAt(100, [&] { order.push_back(1); });
    eq.scheduleAt(90, [&] { order.push_back(-1); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3}));
}

TEST(EventQueueWindow, MergedEventBeforeRingBaseStillFires)
{
    EventQueue eq;
    std::vector<int> order;
    // An idle domain whose only local work sits far ahead: the ring
    // re-anchors at the far event, then a barrier merge delivers
    // cross-domain work due much earlier. rewindTo must recover.
    const Tick far = EventQueue::horizon + 500;
    eq.scheduleAt(far, [&order] { order.push_back(1); });
    eq.peekNext(); // anchor the window at `far`
    eq.scheduleMergedAt(40, [&order] { order.push_back(0); });
    EXPECT_EQ(eq.peekNext(), 40u);
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.now(), far);
}

} // namespace

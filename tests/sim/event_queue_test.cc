/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace
{

using gs::EventQueue;
using gs::Tick;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.scheduleAt(5, [&order, i] { order.push_back(i); });
    eq.runUntil();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RelativeScheduleUsesCurrentTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(100, [&] {
        eq.schedule(50, [&] { seen = eq.now(); });
    });
    eq.runUntil();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { fired += 1; });
    eq.scheduleAt(1000, [&] { fired += 1; });
    eq.runUntil(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunForAdvancesRelative)
{
    EventQueue eq;
    eq.scheduleAt(10, [] {});
    eq.runUntil(50);
    eq.runFor(25);
    EXPECT_EQ(eq.now(), 75u);
}

TEST(EventQueue, EventsCanCascade)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            eq.schedule(1, chain);
    };
    eq.schedule(1, chain);
    eq.runUntil();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, ClearDropsPendingEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { fired += 1; });
    eq.clear();
    eq.runUntil();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.scheduleAt(100, [] {});
    eq.runUntil();
    EXPECT_DEATH(eq.scheduleAt(50, [] {}), "past");
}

} // namespace

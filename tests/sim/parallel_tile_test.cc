/**
 * @file
 * Tile decomposition and adaptive-lookahead unit tests: the
 * chooseTileShape() selection policy (non-square machines, threads
 * beyond the node count, the 1x1 degenerate), the tileDomainOf()
 * node->tile mapping, the AdaptiveLookahead widen/shrink state
 * machine, EventQueue::truncateDrain (the widened-window abort the
 * Network's injection path relies on), per-edge mailbox parity
 * flipping under the engine's barrier discipline, and work-stealing
 * determinism. This file is its own test binary so the sanitizer CI
 * lane can run it by name.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/parallel.hh"

namespace
{

using namespace gs;

// --- chooseTileShape -------------------------------------------------

TEST(TileShape, PrefersSquareCheapCutsOnSquareTorus)
{
    // 8 threads on the 8x8 torus: 2x4 tiles cut 2*8 + 4*8 = 48 wrap
    // links, strictly fewer than the old 8-column split's 64.
    EXPECT_EQ(chooseTileShape(8, 8, 8), (TileShape{2, 4}));
    EXPECT_EQ(chooseTileShape(4, 4, 4), (TileShape{2, 2}));
}

TEST(TileShape, NonSquareTorusFollowsTheCheapAxis)
{
    // 8x4 torus, 4 threads: a single row of 4 tiles cuts only the 4
    // column seams (4*4 = 16 links); 2x2 would cut 8*2 + 4*2 = 24.
    EXPECT_EQ(chooseTileShape(8, 4, 4), (TileShape{1, 4}));
    // 4x2 torus, 2 threads: split the wide axis, never the short one.
    EXPECT_EQ(chooseTileShape(4, 2, 2), (TileShape{1, 2}));
}

TEST(TileShape, ThreadsBeyondNodesClampToOneTilePerNode)
{
    // 4x2 torus, 8 threads: exactly one tile per node.
    EXPECT_EQ(chooseTileShape(4, 2, 8), (TileShape{2, 4}));
    // More threads than nodes never inflates the tile count.
    EXPECT_EQ(chooseTileShape(4, 2, 64), (TileShape{2, 4}));
    EXPECT_EQ(chooseTileShape(2, 1, 8), (TileShape{1, 2}));
}

TEST(TileShape, DegenerateMachinesStaySerial)
{
    EXPECT_EQ(chooseTileShape(1, 1, 8), (TileShape{1, 1}));
    EXPECT_EQ(chooseTileShape(8, 8, 1), (TileShape{1, 1}));
    EXPECT_EQ(chooseTileShape(8, 8, 0), (TileShape{1, 1}));
}

TEST(TileShape, AlwaysFitsAndCoversTheThreadTarget)
{
    for (int w : {1, 2, 3, 4, 5, 8}) {
        for (int h : {1, 2, 3, 4, 8}) {
            for (int t : {1, 2, 3, 4, 6, 8, 16, 100}) {
                TileShape s = chooseTileShape(w, h, t);
                SCOPED_TRACE(std::to_string(w) + "x" +
                             std::to_string(h) + " t" +
                             std::to_string(t));
                EXPECT_GE(s.rows, 1);
                EXPECT_GE(s.cols, 1);
                EXPECT_LE(s.rows, h);
                EXPECT_LE(s.cols, w);
                EXPECT_GE(s.count(), std::min(t < 1 ? 1 : t, w * h));
            }
        }
    }
}

// --- chooseTileShape3 ------------------------------------------------

TEST(TileShape3, DepthOneReducesExactlyToTheTwoDimensionalPolicy)
{
    // The 3-D key must pick the 2-D shape bit-for-bit at depth 1 —
    // that is what keeps every existing 2-D parallel run (and its
    // goldens) untouched by the generalization.
    for (int w : {1, 2, 3, 4, 5, 8, 16})
        for (int h : {1, 2, 3, 4, 8})
            for (int t : {1, 2, 3, 4, 6, 8, 16, 100}) {
                SCOPED_TRACE(std::to_string(w) + "x" +
                             std::to_string(h) + " t" +
                             std::to_string(t));
                EXPECT_EQ(chooseTileShape3(w, h, 1, t),
                          chooseTileShape(w, h, t));
            }
}

TEST(TileShape3, CutsTheCheapestPlanesFirst)
{
    // 8x8x8 torus, 8 threads: all three dimensions tie, and a
    // balanced 2x2x2 cut beats any single-axis 8-way slice.
    EXPECT_EQ(chooseTileShape3(8, 8, 8, 8), (TileShape{2, 2, 2}));
    // 16x16x8, 4 threads: cutting a 16-wide axis severs 16*8 links
    // per seam; a Z cut severs 16*16. Split the cheap axes.
    TileShape s = chooseTileShape3(16, 16, 8, 4);
    EXPECT_EQ(s.count(), 4);
    EXPECT_EQ(s.slabs, 1);
}

TEST(TileShape3, AlwaysFitsAndCoversTheThreadTarget)
{
    for (int w : {1, 2, 4, 8})
        for (int h : {1, 3, 4})
            for (int d : {1, 2, 4})
                for (int t : {1, 2, 4, 8, 64}) {
                    TileShape s = chooseTileShape3(w, h, d, t);
                    SCOPED_TRACE(std::to_string(w) + "x" +
                                 std::to_string(h) + "x" +
                                 std::to_string(d) + " t" +
                                 std::to_string(t));
                    EXPECT_GE(s.rows, 1);
                    EXPECT_GE(s.cols, 1);
                    EXPECT_GE(s.slabs, 1);
                    EXPECT_LE(s.rows, h);
                    EXPECT_LE(s.cols, w);
                    EXPECT_LE(s.slabs, d);
                    EXPECT_GE(s.count(),
                              std::min(t < 1 ? 1 : t, w * h * d));
                }
}

// --- tileDomainOf ----------------------------------------------------

TEST(TileShape, DomainMapIsBalancedContiguousRowMajor)
{
    // 4x4 torus, 2x2 tiles: quadrants, numbered row-major.
    const TileShape s{2, 2};
    EXPECT_EQ(tileDomainOf(0, 0, 4, 4, s), 0);
    EXPECT_EQ(tileDomainOf(3, 0, 4, 4, s), 1);
    EXPECT_EQ(tileDomainOf(0, 3, 4, 4, s), 2);
    EXPECT_EQ(tileDomainOf(3, 3, 4, 4, s), 3);

    // Every tile of an evenly divisible machine owns the same number
    // of nodes, and node blocks are contiguous in x and y.
    std::array<int, 4> count{};
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x) {
            int d = tileDomainOf(x, y, 4, 4, s);
            ASSERT_GE(d, 0);
            ASSERT_LT(d, 4);
            count[std::size_t(d)] += 1;
        }
    for (int d = 0; d < 4; ++d)
        EXPECT_EQ(count[std::size_t(d)], 4);
}

TEST(TileShape, DomainMapBalancesIndivisibleSplits)
{
    // 3 columns of tiles over width 8: 2-3-3 (or 3-3-2) node
    // columns; every domain in range and non-empty.
    const TileShape s{1, 3};
    std::array<int, 3> count{};
    for (int x = 0; x < 8; ++x) {
        int d = tileDomainOf(x, 0, 8, 1, s);
        ASSERT_GE(d, 0);
        ASSERT_LT(d, 3);
        count[std::size_t(d)] += 1;
    }
    for (int d = 0; d < 3; ++d)
        EXPECT_GE(count[std::size_t(d)], 2);
}

// --- tileDomainOf3 ---------------------------------------------------

TEST(TileShape3, DomainMapReducesTo2DAtDepthOne)
{
    const TileShape s{2, 2};
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            EXPECT_EQ(tileDomainOf3(x, y, 0, 4, 4, 1, s),
                      tileDomainOf(x, y, 4, 4, s));
}

TEST(TileShape3, DomainMapIsBalancedContiguousSlabMajor)
{
    // 4x4x4 torus, 2x2x2 tiles: octants, slab-major numbering.
    const TileShape s{2, 2, 2};
    EXPECT_EQ(tileDomainOf3(0, 0, 0, 4, 4, 4, s), 0);
    EXPECT_EQ(tileDomainOf3(3, 0, 0, 4, 4, 4, s), 1);
    EXPECT_EQ(tileDomainOf3(0, 3, 0, 4, 4, 4, s), 2);
    EXPECT_EQ(tileDomainOf3(3, 3, 0, 4, 4, 4, s), 3);
    EXPECT_EQ(tileDomainOf3(0, 0, 3, 4, 4, 4, s), 4);
    EXPECT_EQ(tileDomainOf3(3, 3, 3, 4, 4, 4, s), 7);

    std::array<int, 8> count{};
    for (int z = 0; z < 4; ++z)
        for (int y = 0; y < 4; ++y)
            for (int x = 0; x < 4; ++x) {
                int d = tileDomainOf3(x, y, z, 4, 4, 4, s);
                ASSERT_GE(d, 0);
                ASSERT_LT(d, 8);
                count[std::size_t(d)] += 1;
            }
    for (int d = 0; d < 8; ++d)
        EXPECT_EQ(count[std::size_t(d)], 8);
}

// --- AdaptiveLookahead ----------------------------------------------

TEST(AdaptiveLookahead, WidensGeometricallyWhileQuiet)
{
    AdaptiveLookahead a;
    a.base = 10;
    a.bound = 100;
    EXPECT_EQ(a.step(true), 20);
    EXPECT_TRUE(a.widened());
    EXPECT_EQ(a.step(true), 40);
    EXPECT_EQ(a.step(true), 80);
    EXPECT_EQ(a.step(true), 100); // capped at the provable bound
    EXPECT_EQ(a.step(true), 100);
    EXPECT_TRUE(a.widened());
}

TEST(AdaptiveLookahead, AnyTrafficSnapsBackToBase)
{
    AdaptiveLookahead a;
    a.base = 10;
    a.bound = 100;
    a.step(true);
    a.step(true);
    EXPECT_EQ(a.step(false), 10);
    EXPECT_FALSE(a.widened());
    // And the geometric climb restarts from scratch.
    EXPECT_EQ(a.step(true), 20);
}

TEST(AdaptiveLookahead, NeverWidensWhenBoundDoesNotExceedBase)
{
    AdaptiveLookahead a;
    a.base = 10;
    a.bound = 10;
    EXPECT_EQ(a.step(true), 10);
    EXPECT_FALSE(a.widened());
    a.bound = 5; // degenerate config: cap below the floor
    EXPECT_EQ(a.step(true), 10);
    EXPECT_FALSE(a.widened());
}

TEST(AdaptiveLookahead, MaxFactorCapsTheClimb)
{
    AdaptiveLookahead a;
    a.base = 1;
    a.bound = 1000;
    a.maxFactor = 4;
    a.step(true);
    a.step(true);
    EXPECT_EQ(a.step(true), 4);
    EXPECT_EQ(a.step(true), 4); // factor saturated, not the bound
}

// --- EventQueue::truncateDrain --------------------------------------

TEST(TruncateDrain, AbortsTheRestOfAWidenedWindow)
{
    // The widening protocol: a window was opened to [0, 100) on the
    // promise of zero cross-tile traffic; the event at t=10 breaks
    // the promise (an injection) and truncates the window to t+1.
    // Same-tick events still fire; everything later must wait for
    // the next (conservative) window.
    EventQueue q;
    std::vector<int> fired;
    q.scheduleAt(10, [&] {
        fired.push_back(10);
        q.truncateDrain(11);
    });
    q.scheduleAt(10, [&] { fired.push_back(100 + 10); });
    q.scheduleAt(40, [&] { fired.push_back(40); });
    q.scheduleAt(90, [&] { fired.push_back(90); });

    EXPECT_EQ(q.drainWindow(100), 2u);
    EXPECT_EQ(fired, (std::vector<int>{10, 110}));

    // The next drain picks the survivors up unharmed.
    EXPECT_EQ(q.drainWindow(100), 2u);
    EXPECT_EQ(fired, (std::vector<int>{10, 110, 40, 90}));
}

TEST(TruncateDrain, RaisingTheLimitIsIgnored)
{
    EventQueue q;
    std::vector<int> fired;
    q.scheduleAt(5, [&] {
        fired.push_back(5);
        q.truncateDrain(500); // never widens an open window
    });
    q.scheduleAt(20, [&] { fired.push_back(20); });
    q.scheduleAt(60, [&] { fired.push_back(60); });
    EXPECT_EQ(q.drainWindow(50), 2u);
    EXPECT_EQ(fired, (std::vector<int>{5, 20}));
}

// --- engine fixtures -------------------------------------------------

/**
 * Four domains in a ring, cross-posting through parity
 * double-buffered per-edge mailboxes exactly the way the Network's
 * boundary-edge boxes work: box[src] is the outbox of edge
 * src -> (src+1)%4, owned for writing by src's claiming worker; a
 * post during epoch E lands in buffer E & 1, and the consumer's
 * merge at the start of epoch E+1 reads that buffer (parity
 * (epochOf+1) & 1 before its own increment) while fresh posts go to
 * the other one. The fixture asserts the discipline holds under
 * stealing and at any thread count: every merge sees exactly the
 * previous epoch's posts, never its own epoch's.
 */
struct RingMailboxFixture
{
    struct Box
    {
        std::vector<Tick> buf[2]; ///< due times, parity-indexed
    };

    explicit RingMailboxFixture(int threads, Tick lookahead = 8)
    {
        ParallelEngine::Config cfg;
        cfg.domains = 4;
        cfg.threads = threads;
        cfg.lookahead = lookahead;
        eng = std::make_unique<ParallelEngine>(cfg);
        eng->setMergeHook([this](int d, Tick ws) { mergeFor(d, ws); });
        eng->setPendingMinHook(
            [this](int d) { return pendingMinOf(d); });
    }

    /** Post a due time on edge src -> (src+1)%4 (src's worker). */
    void
    post(int src, Tick due)
    {
        // epochOf[src] was already incremented by this epoch's
        // merge, so it names the CURRENT epoch + 1; (it + 1) & 1 is
        // the posting parity of the current epoch.
        Box &b = box[std::size_t(src)];
        b.buf[(epochOf[std::size_t(src)] + 1) & 1].push_back(due);
        posted.fetch_add(1, std::memory_order_relaxed);
    }

    void
    mergeFor(int d, Tick ws)
    {
        // Read the in-edge ((d+3)%4 -> d) at the pre-increment
        // parity: exactly the posts of the previous epoch. The
        // poster wrote them before the barrier; new posts this epoch
        // go to the other buffer, so the read is race-free.
        Box &b = box[std::size_t((d + 3) % 4)];
        auto &buf = b.buf[(epochOf[std::size_t(d)] + 1) & 1];
        for (Tick due : buf) {
            // The parity flip guarantee: nothing merged was posted
            // inside the window being opened.
            EXPECT_GE(due, ws);
            Tick at = due;
            eng->domainCtx(d).queue().scheduleMergedAt(
                at, [this, d, at] { deliver(d, at); });
            merged.fetch_add(1, std::memory_order_relaxed);
        }
        buf.clear();
        epochOf[std::size_t(d)] += 1;
    }

    Tick
    pendingMinOf(int d)
    {
        // Posting parity only: d's own outbox entries not yet
        // consumed (read by d's worker, or pre-run by the driver).
        const Box &b = box[std::size_t(d)];
        const auto &buf = b.buf[(epochOf[std::size_t(d)] + 1) & 1];
        Tick m = maxTick;
        for (Tick due : buf)
            m = std::min(m, due);
        return m;
    }

    /** Deliver at domain d and forward around the ring. */
    void
    deliver(int d, Tick now)
    {
        delivered.fetch_add(1, std::memory_order_relaxed);
        if (hops.fetch_sub(1, std::memory_order_relaxed) <= 1)
            return;
        post(d, now + crossDelay);
    }

    static constexpr Tick crossDelay = 8; // >= lookahead: legal post

    std::unique_ptr<ParallelEngine> eng;
    std::array<Box, 4> box;
    std::array<std::uint64_t, 4> epochOf{};
    std::atomic<int> hops{0};
    std::atomic<int> posted{0};
    std::atomic<int> merged{0};
    std::atomic<int> delivered{0};
};

TEST(TileEngine, MailboxParityFlipsPerEdgePerEpoch)
{
    RingMailboxFixture f(4);
    f.hops.store(64);
    // Seed one message into domain 0's inbox at t=8 (posted "from"
    // domain 3 in pre-run epoch 0).
    f.post(3, 8);
    f.eng->run(100000);
    EXPECT_EQ(f.delivered.load(), 64);
    EXPECT_EQ(f.merged.load(), f.posted.load());
    // Every mailbox buffer drained: parity never stranded a post.
    for (const auto &b : f.box) {
        EXPECT_TRUE(b.buf[0].empty());
        EXPECT_TRUE(b.buf[1].empty());
    }
}

TEST(TileEngine, MailboxDisciplineIsThreadCountInvariant)
{
    std::array<std::uint64_t, 3> epochs{};
    std::array<int, 3> i{};
    int k = 0;
    for (int threads : {1, 2, 4}) {
        RingMailboxFixture f(threads);
        f.hops.store(64);
        f.post(3, 8);
        f.eng->run(100000);
        EXPECT_EQ(f.delivered.load(), 64);
        epochs[std::size_t(k)] = f.eng->epochs();
        i[std::size_t(k)] = f.merged.load();
        k += 1;
    }
    // The epoch sequence and merge count are simulation state, not
    // scheduling state: identical at every worker count.
    EXPECT_EQ(epochs[0], epochs[1]);
    EXPECT_EQ(epochs[0], epochs[2]);
    EXPECT_EQ(i[0], i[1]);
    EXPECT_EQ(i[0], i[2]);
}

TEST(TileEngine, WindowHookWidensEpochsAwayOnIdleGaps)
{
    // A sparse chain: one event every 8 ticks for 65 events, base
    // lookahead 4 — each event schedules its successor past the
    // conservative window, so the narrow engine pays one barrier per
    // event (skip-ahead jumps the gap but cannot batch). A hook that
    // widens the window to 64 ticks fits 8 chain links per epoch and
    // must cut the epoch count several-fold, without changing what
    // fires.
    auto countEpochs = [](bool widen) {
        ParallelEngine::Config cfg;
        cfg.domains = 2;
        cfg.threads = 2;
        cfg.lookahead = 4;
        ParallelEngine eng(cfg);
        std::atomic<int> fired{0};
        std::function<void(Tick)> chain = [&](Tick t) {
            fired.fetch_add(1, std::memory_order_relaxed);
            if (t < 64 * 8) {
                Tick next = t + 8;
                eng.domainCtx(0).queue().scheduleAt(
                    next, [&chain, next] { chain(next); });
            }
        };
        eng.domainCtx(0).queue().scheduleAt(0, [&chain] { chain(0); });
        if (widen) {
            eng.setWindowHook([](Tick ws, Tick) { return ws + 64; });
        }
        eng.run(maxTick);
        EXPECT_EQ(fired.load(), 65);
        return eng.epochs();
    };
    const std::uint64_t narrow = countEpochs(false);
    const std::uint64_t wide = countEpochs(true);
    EXPECT_LT(wide, narrow);
}

TEST(TileEngine, StealingKeepsResultsIdenticalAndCountsSteals)
{
    // All the work lives in domain 3 — worker 1's home block under
    // the 2-thread split — so worker 0 can only contribute via the
    // steal scan. Simulated results must not depend on who wins.
    auto runOnce = [](int threads) {
        ParallelEngine::Config cfg;
        cfg.domains = 4;
        cfg.threads = threads;
        cfg.lookahead = 4;
        ParallelEngine eng(cfg);
        std::atomic<std::uint64_t> sum{0};
        for (Tick t = 1; t <= 400; ++t)
            eng.domainCtx(3).queue().scheduleAt(t, [&sum, t] {
                sum.fetch_add(t, std::memory_order_relaxed);
            });
        Tick end = eng.run(maxTick);
        return std::tuple<std::uint64_t, std::uint64_t, Tick,
                          std::uint64_t>{
            sum.load(), eng.firedTotal(), end, eng.steals()};
    };
    auto [s1, f1, e1, st1] = runOnce(1);
    auto [s2, f2, e2, st2] = runOnce(2);
    auto [s4, f4, e4, st4] = runOnce(4);
    EXPECT_EQ(s1, 400u * 401u / 2u);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1, s4);
    EXPECT_EQ(f1, f2);
    EXPECT_EQ(f1, f4);
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(e1, e4);
    // A single worker has nowhere to steal from.
    EXPECT_EQ(st1, 0u);
}

} // namespace

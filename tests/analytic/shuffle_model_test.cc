/** @file Table 1 analytic model tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "analytic/latency_model.hh"
#include "analytic/shuffle_model.hh"
#include "system/machine.hh"
#include "topology/torus.hh"
#include "topology/tree.hh"

namespace
{

using namespace gs;
using namespace gs::analytic;

TEST(ShuffleModel, BisectionFormulas)
{
    // Torus bisection = 2 * min(W, H) links.
    EXPECT_EQ(torusBisection(4, 2), 4);
    EXPECT_EQ(torusBisection(4, 4), 8);
    EXPECT_EQ(torusBisection(16, 8), 16);
    // Shuffle doubles the rectangular (W = 2H) cut, leaves squares.
    EXPECT_EQ(shuffleBisection(4, 2), 8);
    EXPECT_EQ(shuffleBisection(8, 4), 16);
    EXPECT_EQ(shuffleBisection(4, 4), 8);
    EXPECT_EQ(shuffleBisection(16, 16), 32);
}

TEST(ShuffleModel, BisectionGainsMatchTable1Exactly)
{
    // Table 1 bisection column: 2.0 for rectangular, 1.0 for square.
    for (const auto &row : table1()) {
        double expect = row.width == 2 * row.height ? 2.0 : 1.0;
        EXPECT_DOUBLE_EQ(row.bisectionGain, expect)
            << row.width << "x" << row.height;
    }
}

TEST(ShuffleModel, SmallShapesMatchTable1Exactly)
{
    // The 4x2 (the machine actually rewired and measured in Fig 18)
    // and 4x4 rows reproduce the paper's model to 3 decimals.
    auto g42 = evaluateShuffle(4, 2);
    EXPECT_NEAR(g42.avgLatencyGain, 1.200, 0.001);
    EXPECT_NEAR(g42.worstLatencyGain, 1.500, 0.001);
    auto g44 = evaluateShuffle(4, 4);
    EXPECT_NEAR(g44.avgLatencyGain, 1.067, 0.001);
    EXPECT_NEAR(g44.worstLatencyGain, 1.333, 0.001);
}

TEST(ShuffleModel, WorstCaseGainsMatchMostRows)
{
    // Worst-latency column: 1.5 rectangular / 1.333 square, for
    // every size up to 16x8 (see EXPERIMENTS.md on 16x16).
    EXPECT_NEAR(evaluateShuffle(8, 4).worstLatencyGain, 1.5, 0.001);
    EXPECT_NEAR(evaluateShuffle(16, 8).worstLatencyGain, 1.5, 0.001);
    EXPECT_NEAR(evaluateShuffle(8, 8).worstLatencyGain, 4.0 / 3.0,
                0.001);
}

TEST(ShuffleModel, GainsAlwaysAtLeastOne)
{
    for (const auto &row : table1()) {
        EXPECT_GE(row.avgLatencyGain, 1.0);
        EXPECT_GE(row.worstLatencyGain, 1.0);
        EXPECT_GE(row.bisectionGain, 1.0);
    }
}

TEST(ShuffleModel, RectangularBeatsSquareBisectionAndWorst)
{
    // The paper: "shuffle is more beneficial in rectangular rather
    // than in square shaped interconnects (bisection width and
    // worst-case latency)".
    auto rect = evaluateShuffle(8, 4);
    auto square = evaluateShuffle(8, 8);
    EXPECT_GT(rect.bisectionGain, square.bisectionGain);
    EXPECT_GT(rect.worstLatencyGain, square.worstLatencyGain);
}

TEST(ShuffleModel, Table1HasSixRows)
{
    auto rows = table1();
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_EQ(rows[0].width, 4);
    EXPECT_EQ(rows[0].height, 2);
    EXPECT_EQ(rows[5].width, 16);
    EXPECT_EQ(rows[5].height, 16);
}

TEST(LatencyModel, MeanHopsIncludesSelf)
{
    topo::Torus2D t(2, 2);
    // Distances from any node: 0,1,1,2 -> mean 1.0.
    EXPECT_DOUBLE_EQ(meanHopsWithSelf(t), 1.0);
}

TEST(LatencyModel, IdleLatencyComposition)
{
    topo::Torus2D t(4, 4);
    double avg = avgIdleLatencyNs(t, 83.0, 28.0);
    // 4x4 mean hops (with self) = 2.0 -> 83 + 56 = 139.
    EXPECT_NEAR(avg, 139.0, 0.01);
}

TEST(LatencyModel, Gs320TwoLevelAverage)
{
    // 16 CPUs, 4 per QBB: 1/4 local.
    double avg = gs320AvgLatencyNs(16, 4, 330.0, 860.0);
    EXPECT_NEAR(avg, 0.25 * 330 + 0.75 * 860, 0.01);
    // Small systems are all local.
    EXPECT_DOUBLE_EQ(gs320AvgLatencyNs(4, 4, 330.0, 860.0), 330.0);
}

TEST(LatencyModel, Mm1DivergesAtSaturation)
{
    EXPECT_DOUBLE_EQ(mm1LatencyNs(100.0, 0.0), 100.0);
    EXPECT_NEAR(mm1LatencyNs(100.0, 0.5), 200.0, 0.01);
    EXPECT_TRUE(std::isinf(mm1LatencyNs(100.0, 1.0)));
}

TEST(LatencyModel, Figure14Ordering)
{
    // GS1280 average latency grows slowly with size; GS320 is far
    // above at every count (Figure 14).
    double prev = 0;
    for (int cpus : {4, 8, 16, 32, 64}) {
        auto [w, h] = sys::torusShape(cpus);
        topo::Torus2D t(w, h);
        double gs1280 = avgIdleLatencyNs(t, 83.0, 28.0);
        double gs320 =
            gs320AvgLatencyNs(std::min(cpus, 32), 4, 330.0, 860.0);
        EXPECT_GT(gs1280, prev);
        EXPECT_GT(gs320, 2.5 * gs1280) << cpus;
        prev = gs1280;
    }
}

} // namespace

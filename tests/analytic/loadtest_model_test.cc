/** @file Load-test queueing model tests, including a cross-check
 *  against the flit-level simulator. */

#include <gtest/gtest.h>

#include <memory>

#include "analytic/loadtest_model.hh"
#include "system/machine.hh"
#include "workload/load_test.hh"

namespace
{

using namespace gs;
using namespace gs::analytic;

TEST(LoadModel, LinearBelowSaturation)
{
    LoadModelParams p;
    p.cpus = 16;
    p.unloadedLatencyNs = 200;
    p.saturationGBs = 50;

    auto one = evaluateLoadPoint(p, 1);
    auto two = evaluateLoadPoint(p, 2);
    EXPECT_NEAR(two.bandwidthGBs, 2.0 * one.bandwidthGBs, 1e-9);
    // Latency flat below the knee.
    EXPECT_NEAR(one.latencyNs, 200.0, 1e-9);
    EXPECT_NEAR(two.latencyNs, 200.0, 1e-9);
}

TEST(LoadModel, FlatAboveSaturationWithRisingLatency)
{
    LoadModelParams p;
    p.cpus = 16;
    p.unloadedLatencyNs = 200;
    p.saturationGBs = 50;

    double knee = saturationOutstanding(p);
    auto below = evaluateLoadPoint(p, knee * 0.5);
    auto at = evaluateLoadPoint(p, knee);
    auto above = evaluateLoadPoint(p, knee * 2);

    EXPECT_LT(below.bandwidthGBs, at.bandwidthGBs);
    EXPECT_NEAR(above.bandwidthGBs, 50.0, 1e-9);
    EXPECT_NEAR(above.latencyNs, 2.0 * at.latencyNs, 1e-6);
}

TEST(LoadModel, KneeMatchesLittlesLaw)
{
    LoadModelParams p;
    p.cpus = 16;
    p.unloadedLatencyNs = 200;
    p.bytesPerRequest = 64;
    p.saturationGBs = 50;
    // k* = B*L/bytes = 50 * 200 / 64 = 156.25 -> ~9.8 per CPU.
    EXPECT_NEAR(saturationOutstanding(p), 156.25 / 16, 1e-9);
}

TEST(LoadModel, TracksTheSimulatedCurveBelowSaturation)
{
    // Run the simulator's 16P load test at low outstanding counts
    // and check the model (fed the simulator's own idle latency and
    // ceiling) brackets the measured bandwidth within 30%.
    auto measure = [](int outstanding) {
        sys::Gs1280Options opt;
        opt.mlp = outstanding;
        auto m = sys::Machine::buildGS1280(16, opt);
        std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < 16; ++c) {
            gens.push_back(std::make_unique<wl::RandomRemoteReads>(
                c, 16, 512ULL << 20, 800,
                60 + static_cast<unsigned>(c)));
            sources.push_back(gens.back().get());
        }
        Tick start = m->ctx().now();
        EXPECT_TRUE(m->run(sources, 10000 * tickMs));
        double ns = ticksToNs(m->ctx().now() - start);
        return 16.0 * 800.0 * 64.0 / ns; // GB/s
    };

    LoadModelParams p;
    p.cpus = 16;
    p.unloadedLatencyNs = 209; // simulator's own 1-outstanding value
    p.saturationGBs = 51;      // simulator's own plateau

    for (int w : {1, 2, 4}) {
        double sim = measure(w);
        double model = evaluateLoadPoint(p, w).bandwidthGBs;
        EXPECT_NEAR(sim, model, 0.30 * model) << w << " outstanding";
    }
}

} // namespace

/** @file Fault-injection tests at the network level: re-routing
 *  around failed links, drop accounting for unreachable and dead
 *  destinations, scheduled fault plans, repair, and the inject()
 *  argument validation. */

#include <gtest/gtest.h>

#include "fault/degraded.hh"
#include "fault/injector.hh"
#include "sim/random.hh"
#include "topology/torus.hh"
#include "topology/tree.hh"

namespace
{

using namespace gs;
using namespace gs::fault;
using net::MsgClass;
using net::Packet;

struct FaultFixture
{
    explicit FaultFixture(int w = 4, int h = 4)
        : base(w, h), deg(base),
          net(ctx, deg, net::NetworkParams::gs1280()),
          inj(ctx, net, deg)
    {
    }

    SimContext ctx;
    topo::Torus2D base;
    DegradedTopology deg;
    net::Network net;
    FaultInjector inj;
};

Packet
makePacket(NodeId src, NodeId dst, MsgClass cls = MsgClass::Request,
           int flits = net::headerFlits)
{
    Packet p;
    p.src = src;
    p.dst = dst;
    p.cls = cls;
    p.flits = flits;
    return p;
}

TEST(FaultInjection, ReroutesAroundFailedLink)
{
    FaultFixture f;
    int got = 0, hops = 0;
    f.net.setHandler(1, [&](const Packet &p) {
        got += 1;
        hops = p.hops;
    });

    f.inj.failLink(0, topo::portEast); // the 0 -> 1 direct link
    f.net.inject(makePacket(0, 1));
    f.ctx.queue().runUntil();

    EXPECT_EQ(got, 1);
    EXPECT_GT(hops, 1) << "packet should detour around the cut link";
    EXPECT_EQ(f.net.stats().droppedPackets, 0u);
    EXPECT_EQ(f.net.inFlight(), 0);
}

TEST(FaultInjection, SaturatingTrafficDrainsOnDegradedTorus)
{
    FaultFixture f;
    f.inj.failLink(0, topo::portEast);
    f.inj.failLink(5, topo::portNorth);
    f.inj.failLink(10, topo::portWest);
    ASSERT_TRUE(f.deg.connected());

    Rng rng(42);
    int got = 0, sent = 0;
    for (NodeId n = 0; n < 16; ++n)
        f.net.setHandler(n, [&](const Packet &) { got += 1; });
    for (int burst = 0; burst < 40; ++burst) {
        for (NodeId src = 0; src < 16; ++src) {
            auto dst = static_cast<NodeId>(rng.below(16));
            if (dst == src)
                continue;
            f.net.inject(makePacket(src, dst, MsgClass::BlockResponse,
                                    net::dataFlits));
            sent += 1;
        }
    }
    f.ctx.queue().runUntil(100 * tickMs);

    EXPECT_EQ(got, sent) << "degraded fabric failed to drain";
    EXPECT_EQ(f.net.inFlight(), 0);
    EXPECT_EQ(f.net.stats().droppedPackets, 0u);
}

TEST(FaultInjection, ScheduledPlanAppliesAtItsTime)
{
    FaultFixture f;
    Tick cutAt = 2 * tickUs;
    FaultPlan plan;
    plan.linkDown(cutAt, 0, topo::portEast);
    f.inj.schedule(plan);

    f.net.setHandler(1, [](const Packet &) {});
    f.net.inject(makePacket(0, 1));
    f.ctx.queue().runUntil(tickUs);
    EXPECT_FALSE(f.deg.degraded()) << "fault applied early";
    EXPECT_EQ(f.net.stats().hopsPerPacket.mean(), 1.0);

    f.ctx.queue().runUntil(3 * tickUs);
    EXPECT_TRUE(f.deg.linkFailed(0, topo::portEast));
    EXPECT_EQ(f.inj.stats().linkFailures, 1);

    f.net.inject(makePacket(0, 1));
    f.ctx.queue().runUntil();
    EXPECT_GT(f.net.stats().hopsPerPacket.mean(), 1.0);
}

TEST(FaultInjection, UnroutableDestinationDropsAndAccounts)
{
    // GS320 tree: cutting QBB 0's uplink makes the other QBB
    // unreachable; packets already heading there must be dropped
    // (waiting can't help), and the fabric must still drain.
    SimContext ctx;
    topo::QbbTree base(8, 4);
    DegradedTopology deg(base);
    net::Network net(ctx, deg, net::NetworkParams::gs320());
    FaultInjector inj(ctx, net, deg);

    int got = 0;
    for (NodeId n = 0; n < 8; ++n)
        net.setHandler(n, [&](const Packet &) { got += 1; });

    inj.failLink(8, 4); // QBB 0's uplink to the global switch
    for (int i = 0; i < 10; ++i) {
        net.inject(makePacket(0, 4)); // cross-QBB: unreachable
        net.inject(makePacket(0, 3)); // intra-QBB: fine
    }
    ctx.queue().runUntil(10 * tickMs);

    EXPECT_EQ(got, 10);
    EXPECT_EQ(net.inFlight(), 0);
    EXPECT_EQ(net.stats().droppedPackets, 10u);
    EXPECT_EQ(inj.stats().dropsUnroutable, 10u);
    EXPECT_EQ(inj.stats().packetsDropped, 10u);
}

TEST(FaultInjection, DeadNodeDropsTrafficAndFlushesBuffers)
{
    FaultFixture f;
    int got = 0;
    for (NodeId n = 0; n < 16; ++n)
        f.net.setHandler(n, [&](const Packet &) { got += 1; });

    // Load up traffic through and toward node 5, then kill it.
    Rng rng(7);
    int toDead = 0, sent = 0;
    for (int i = 0; i < 200; ++i) {
        auto src = static_cast<NodeId>(rng.below(16));
        auto dst = static_cast<NodeId>(rng.below(16));
        if (src == dst)
            continue;
        f.net.inject(makePacket(src, dst, MsgClass::BlockResponse,
                                net::dataFlits));
        sent += 1;
        if (dst == 5)
            toDead += 1;
    }
    f.ctx.queue().runFor(5 * f.net.period()); // a few cycles in
    f.inj.failNode(5);
    f.ctx.queue().runUntil(100 * tickMs);

    EXPECT_EQ(f.net.inFlight(), 0) << "fabric did not drain";
    EXPECT_EQ(got + static_cast<int>(f.net.stats().droppedPackets),
              sent);
    EXPECT_GT(f.net.stats().droppedPackets, 0u);
    EXPECT_EQ(f.inj.stats().nodeFailures, 1);

    // New traffic from or to the dead node is refused at injection.
    std::uint64_t before = f.net.stats().droppedPackets;
    f.net.inject(makePacket(5, 0));
    f.net.inject(makePacket(0, 5));
    f.ctx.queue().runUntil(200 * tickMs);
    EXPECT_EQ(f.net.stats().droppedPackets, before + 2);
    EXPECT_EQ(f.net.inFlight(), 0);
}

TEST(FaultInjection, RepairRestoresDeliveryAndCredits)
{
    FaultFixture f;
    int got = 0;
    for (NodeId n = 0; n < 16; ++n)
        f.net.setHandler(n, [&](const Packet &) { got += 1; });

    f.inj.failLink(0, topo::portEast);
    f.net.inject(makePacket(0, 1));
    f.ctx.queue().runUntil();
    EXPECT_EQ(got, 1);

    f.inj.repairLink(0, topo::portEast);
    EXPECT_FALSE(f.deg.degraded());

    // Saturate across the repaired link; a credit-accounting bug
    // here would wedge or underflow.
    int sent = 0;
    for (int i = 0; i < 100; ++i) {
        f.net.inject(makePacket(0, 1, MsgClass::BlockResponse,
                                net::dataFlits));
        f.net.inject(makePacket(1, 0, MsgClass::BlockResponse,
                                net::dataFlits));
        sent += 2;
    }
    f.ctx.queue().runUntil(100 * tickMs);
    EXPECT_EQ(got, 1 + sent);
    EXPECT_EQ(f.net.inFlight(), 0);
}

TEST(FaultInjection, NodeRepairRevivesIt)
{
    FaultFixture f;
    int got = 0;
    for (NodeId n = 0; n < 16; ++n)
        f.net.setHandler(n, [&](const Packet &) { got += 1; });

    f.inj.failNode(5);
    f.inj.repairNode(5);
    EXPECT_FALSE(f.deg.degraded());

    f.net.inject(makePacket(0, 5));
    f.net.inject(makePacket(5, 0));
    f.ctx.queue().runUntil();
    EXPECT_EQ(got, 2);
    EXPECT_EQ(f.inj.stats().repairs, 1);
}

using FaultInjectionDeath = ::testing::Test;

TEST(FaultInjectionDeath, InjectValidatesArguments)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // gs_fatal exits with code 1 on malformed packets.
    EXPECT_EXIT(
        {
            FaultFixture f;
            f.net.inject(makePacket(0, 99));
        },
        ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(
        {
            FaultFixture f;
            f.net.inject(makePacket(-3, 1));
        },
        ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(
        {
            FaultFixture f;
            Packet p = makePacket(0, 1);
            p.flits = 0;
            f.net.inject(p);
        },
        ::testing::ExitedWithCode(1), "non-positive");
}

TEST(FaultInjectionDeath, FaultEventsValidateArguments)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Naming hardware that doesn't exist is a plan error, not an
    // internal assertion.
    EXPECT_EXIT(
        {
            FaultFixture f;
            f.inj.failNode(99);
        },
        ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(
        {
            FaultFixture f;
            f.inj.failLink(0, 7);
        },
        ::testing::ExitedWithCode(1), "port 7 out of range");
}

} // namespace

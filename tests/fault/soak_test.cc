/** @file Seeded soak tests: sustained hotspot + uniform load on a
 *  4x4 torus with the watchdog armed, asserting full drain, credit
 *  conservation and zero residual VC occupancy afterwards — on the
 *  healthy fabric and on a degraded one. */

#include <gtest/gtest.h>

#include "fault/degraded.hh"
#include "fault/injector.hh"
#include "fault/watchdog.hh"
#include "net/synthetic.hh"
#include "topology/torus.hh"

namespace
{

using namespace gs;
using namespace gs::fault;

/**
 * After a full drain every input VC must be empty and every credit
 * counter must be back at the VC's capacity: flow control conserved
 * credits across the whole run.
 */
void
expectFabricPristine(const net::Network &net)
{
    const auto &topo = net.topology();
    const auto &prm = net.params();
    ASSERT_EQ(net.inFlight(), 0);
    for (NodeId n = 0; n < NodeId(topo.numNodes()); ++n) {
        const auto &router = net.router(n);
        for (int p = 0; p < topo.numPorts(n); ++p) {
            for (int vc = 0; vc < net::numVcs; ++vc) {
                EXPECT_EQ(router.vcOccupancy(p, vc), 0)
                    << "residual flits at node " << n << " port " << p
                    << " vc " << vc;
                if (!topo.port(n, p).connected())
                    continue;
                int capacity = vc % net::vcSubCount == net::vcAdaptive
                                   ? prm.adaptiveVcFlits
                                   : prm.escapeVcFlits;
                EXPECT_EQ(router.creditsAvailable(p, vc), capacity)
                    << "credits not conserved at node " << n
                    << " port " << p << " vc " << vc;
            }
        }
    }
}

net::SyntheticConfig
soakConfig(net::TrafficPattern pattern, std::uint64_t seed)
{
    net::SyntheticConfig cfg;
    cfg.pattern = pattern;
    cfg.injectionRate = 0.04;
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 6000;
    cfg.seed = seed;
    cfg.hotspotNode = 5;
    cfg.hotspotFraction = 0.4;
    return cfg;
}

TEST(FaultSoak, HealthyTorusSurvivesHotspotAndUniform)
{
    SimContext ctx;
    topo::Torus2D topo(4, 4);
    net::Network net(ctx, topo, net::NetworkParams::gs1280());

    WatchdogConfig wcfg;
    wcfg.checkCycles = 500;
    wcfg.stallCycles = 20000;
    Watchdog dog(ctx, net, wcfg);
    dog.onTrip([](const std::string &why) {
        FAIL() << "watchdog tripped on healthy fabric: " << why;
    });
    dog.arm();

    auto hot = runSynthetic(
        ctx, net, soakConfig(net::TrafficPattern::HotSpot, 11));
    EXPECT_TRUE(hot.drained);
    EXPECT_GT(hot.measuredPackets, 100u);
    expectFabricPristine(net);

    auto uni = runSynthetic(
        ctx, net, soakConfig(net::TrafficPattern::UniformRandom, 12));
    EXPECT_TRUE(uni.drained);
    EXPECT_GT(uni.measuredPackets, 100u);
    expectFabricPristine(net);

    EXPECT_FALSE(dog.tripped());
    EXPECT_EQ(net.stats().droppedPackets, 0u);
    dog.disarm();
}

TEST(FaultSoak, DegradedTorusStillDrainsCleanly)
{
    SimContext ctx;
    topo::Torus2D base(4, 4);
    DegradedTopology deg(base);
    net::Network net(ctx, deg, net::NetworkParams::gs1280());
    FaultInjector inj(ctx, net, deg);

    inj.failLink(5, topo::portEast);
    inj.failLink(12, topo::portNorth);
    ASSERT_TRUE(deg.connected());

    WatchdogConfig wcfg;
    wcfg.checkCycles = 500;
    wcfg.stallCycles = 20000;
    Watchdog dog(ctx, net, wcfg);
    dog.onTrip([](const std::string &why) {
        FAIL() << "watchdog tripped on degraded-but-connected fabric: "
               << why;
    });
    dog.arm();

    auto uni = runSynthetic(
        ctx, net, soakConfig(net::TrafficPattern::UniformRandom, 13));
    EXPECT_TRUE(uni.drained);
    expectFabricPristine(net);

    auto hot = runSynthetic(
        ctx, net, soakConfig(net::TrafficPattern::HotSpot, 14));
    EXPECT_TRUE(hot.drained);
    expectFabricPristine(net);

    EXPECT_FALSE(dog.tripped());
    EXPECT_EQ(net.stats().droppedPackets, 0u);
    dog.disarm();
}

} // namespace

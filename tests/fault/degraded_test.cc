/** @file DegradedTopology tests: verbatim delegation while healthy,
 *  link/node masking, surviving connectivity and the deadlock-free
 *  up/down escape on the degraded graph. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "fault/degraded.hh"
#include "topology/torus.hh"
#include "topology/tree.hh"

namespace
{

using namespace gs;
using namespace gs::fault;

/**
 * Walk the escape relation from @p at to @p dst and validate it:
 * terminates within numNodes() hops (acyclic), every hop uses a live
 * link, and the VC sequence never returns to 0 (up) after a 1 (down)
 * — the invariant that makes up/down routing deadlock-free.
 */
void
expectEscapeWalks(const DegradedTopology &topo, NodeId at, NodeId dst)
{
    NodeId cur = at;
    int maxVcSeen = 0;
    for (int hop = 0; hop <= topo.numNodes(); ++hop) {
        if (cur == dst)
            return;
        topo::EscapeHop esc = topo.escapeRoute(cur, dst, 0);
        ASSERT_GE(esc.port, 0)
            << "no escape route at " << cur << " for dst " << dst;
        topo::Port link = topo.port(cur, esc.port);
        ASSERT_TRUE(link.connected())
            << "escape uses failed link at " << cur;
        EXPECT_GE(esc.vc, maxVcSeen)
            << "escape turned up (VC0) after going down (VC1) at "
            << cur << " toward " << dst;
        maxVcSeen = std::max(maxVcSeen, esc.vc);
        cur = link.peer;
    }
    FAIL() << "escape walk " << at << "->" << dst
           << " did not terminate (cycle)";
}

TEST(DegradedTopology, HealthyDelegatesVerbatim)
{
    topo::Torus2D base(4, 4);
    DegradedTopology deg(base);
    EXPECT_FALSE(deg.degraded());
    EXPECT_EQ(deg.name(), base.name());

    for (NodeId at = 0; at < base.numNodes(); ++at) {
        for (int p = 0; p < base.numPorts(at); ++p) {
            topo::Port a = base.port(at, p), b = deg.port(at, p);
            EXPECT_EQ(a.peer, b.peer);
            EXPECT_EQ(a.peerPort, b.peerPort);
        }
        for (NodeId dst = 0; dst < base.numNodes(); ++dst) {
            EXPECT_EQ(base.adaptivePorts(at, dst, 0),
                      deg.adaptivePorts(at, dst, 0));
            for (int vc = 0; vc < 2; ++vc) {
                topo::EscapeHop a = base.escapeRoute(at, dst, vc);
                topo::EscapeHop b = deg.escapeRoute(at, dst, vc);
                EXPECT_EQ(a.port, b.port);
                EXPECT_EQ(a.vc, b.vc);
            }
        }
    }
}

TEST(DegradedTopology, FailedLinkMaskedBothDirections)
{
    topo::Torus2D base(4, 4);
    DegradedTopology deg(base);
    deg.failLink(0, topo::portEast); // 0 <-> 1

    EXPECT_TRUE(deg.degraded());
    EXPECT_EQ(deg.failedLinks(), 1);
    EXPECT_FALSE(deg.port(0, topo::portEast).connected());
    EXPECT_FALSE(deg.port(1, topo::portWest).connected());
    EXPECT_TRUE(deg.linkFailed(0, topo::portEast));
    EXPECT_TRUE(deg.linkFailed(1, topo::portWest));
    // Unrelated links untouched.
    EXPECT_TRUE(deg.port(0, topo::portWest).connected());
    EXPECT_TRUE(deg.port(2, topo::portEast).connected());
}

TEST(DegradedTopology, AdaptivePortsShrinkAroundFailure)
{
    topo::Torus2D base(4, 4);
    DegradedTopology deg(base);
    // 0 -> 5 is minimal via East then South-ish: both E and N.
    topo::PortSet before = deg.adaptivePorts(0, 5, 0);
    ASSERT_EQ(before.size(), 2u);

    deg.failLink(0, topo::portEast);
    topo::PortSet after = deg.adaptivePorts(0, 5, 0);
    ASSERT_EQ(after.size(), 1u);
    EXPECT_NE(after[0], topo::portEast);
}

TEST(DegradedTopology, OneFailedTorusLinkKeepsFullConnectivity)
{
    topo::Torus2D base(8, 8);
    DegradedTopology deg(base);
    deg.failLink(0, topo::portEast);

    EXPECT_TRUE(deg.connected());
    for (NodeId a = 0; a < deg.numNodes(); ++a)
        for (NodeId b = 0; b < deg.numNodes(); ++b)
            EXPECT_TRUE(deg.reachable(a, b));

    // Every pair still has a valid, acyclic, VC-monotone escape.
    for (NodeId a = 0; a < deg.numNodes(); ++a)
        for (NodeId b = 0; b < deg.numNodes(); ++b)
            expectEscapeWalks(deg, a, b);
}

TEST(DegradedTopology, ManyFailedLinksStillRouteWhileConnected)
{
    topo::Torus2D base(4, 4);
    DegradedTopology deg(base);
    // Cut the whole East column of row-crossing links plus one more.
    deg.failLink(0, topo::portEast);
    deg.failLink(4, topo::portEast);
    deg.failLink(8, topo::portEast);
    deg.failLink(12, topo::portEast);
    deg.failLink(5, topo::portNorth);
    ASSERT_EQ(deg.failedLinks(), 5);

    ASSERT_TRUE(deg.connected());
    for (NodeId a = 0; a < deg.numNodes(); ++a)
        for (NodeId b = 0; b < deg.numNodes(); ++b)
            expectEscapeWalks(deg, a, b);
}

TEST(DegradedTopology, NodeFailureMasksAllItsLinks)
{
    topo::Torus2D base(4, 4);
    DegradedTopology deg(base);
    deg.failNode(5);

    EXPECT_TRUE(deg.nodeFailed(5));
    EXPECT_EQ(deg.failedNodes(), 1);
    for (int p = 0; p < 4; ++p)
        EXPECT_FALSE(deg.port(5, p).connected());
    // Neighbours see their port toward 5 dark too.
    EXPECT_FALSE(deg.port(4, topo::portEast).connected());
    EXPECT_FALSE(deg.port(6, topo::portWest).connected());

    EXPECT_FALSE(deg.reachable(0, 5));
    EXPECT_FALSE(deg.reachable(5, 0));
    // Survivors still all-route.
    for (NodeId a = 0; a < deg.numNodes(); ++a) {
        if (a == 5)
            continue;
        for (NodeId b = 0; b < deg.numNodes(); ++b) {
            if (b == 5)
                continue;
            EXPECT_TRUE(deg.reachable(a, b));
            expectEscapeWalks(deg, a, b);
        }
    }
}

TEST(DegradedTopology, RepairRestoresVerbatimDelegation)
{
    topo::Torus2D base(4, 4);
    DegradedTopology deg(base);
    deg.failLink(3, topo::portSouth);
    deg.failNode(9);
    EXPECT_TRUE(deg.degraded());

    deg.repairNode(9);
    deg.repairLink(3, topo::portSouth);
    EXPECT_FALSE(deg.degraded());

    for (NodeId at = 0; at < base.numNodes(); ++at) {
        for (NodeId dst = 0; dst < base.numNodes(); ++dst) {
            topo::EscapeHop a = base.escapeRoute(at, dst, 0);
            topo::EscapeHop b = deg.escapeRoute(at, dst, 0);
            EXPECT_EQ(a.port, b.port);
            EXPECT_EQ(a.vc, b.vc);
        }
    }
}

TEST(DegradedTopology, TreeUplinkFailurePartitions)
{
    // The GS320's hierarchy has single points of failure: cutting a
    // QBB's uplink to the global switch orphans that whole QBB. (The
    // torus tests above show the GS1280 contrast.)
    topo::QbbTree tree(8, 4); // 2 QBBs + global switch
    DegradedTopology deg(tree);
    // QBB switch of CPU 0 is node 8; its uplink is port 4 (perQbb).
    deg.failLink(8, 4);

    EXPECT_FALSE(deg.reachable(0, 4)); // CPU in the other QBB
    EXPECT_TRUE(deg.reachable(0, 3));  // same QBB still fine
    EXPECT_FALSE(deg.connected());
    EXPECT_LT(deg.escapeRoute(0, 4, 0).port, 0); // no route exists
    expectEscapeWalks(deg, 0, 3);

    deg.repairLink(8, 4);
    EXPECT_TRUE(deg.reachable(0, 4));
}

TEST(DegradedTopology, EscapeForestDeterministic)
{
    topo::Torus2D base(4, 4);
    DegradedTopology a(base), b(base);
    a.failLink(2, topo::portNorth);
    b.failLink(2, topo::portNorth);
    for (NodeId at = 0; at < base.numNodes(); ++at) {
        for (NodeId dst = 0; dst < base.numNodes(); ++dst) {
            EXPECT_EQ(a.escapeRoute(at, dst, 0).port,
                      b.escapeRoute(at, dst, 0).port);
            EXPECT_EQ(a.escapeRoute(at, dst, 0).vc,
                      b.escapeRoute(at, dst, 0).vc);
        }
    }
}

} // namespace

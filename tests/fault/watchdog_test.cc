/** @file Watchdog tests: silence on healthy fabrics (including
 *  saturated ones), genuine deadlock detection on a wedgeable test
 *  topology, the structured diagnostic dump, and the machine-level
 *  coherence-timeout probe. */

#include <gtest/gtest.h>

#include <string>

#include "fault/watchdog.hh"
#include "sim/random.hh"
#include "system/machine.hh"
#include "topology/torus.hh"
#include "workload/pointer_chase.hh"

namespace
{

using namespace gs;
using namespace gs::fault;
using net::MsgClass;
using net::Packet;

/**
 * A deliberately unsafe ring: the escape route is always clockwise
 * on VC0 with no dateline, so its channel-dependency graph is a
 * cycle and saturating it with multi-hop traffic credit-deadlocks.
 * This is the fabric the watchdog must catch (and the healthy
 * topologies must never resemble).
 */
class BrokenRing : public topo::Topology
{
  public:
    explicit BrokenRing(int n) : n_(n) {}

    int numNodes() const override { return n_; }
    int numPorts(NodeId) const override { return 2; }
    std::string name() const override { return "broken-ring"; }

    topo::Port
    port(NodeId node, int p) const override
    {
        topo::Port out;
        out.kind = topo::LinkKind::Backplane;
        if (p == 0) { // clockwise
            out.peer = (node + 1) % n_;
            out.peerPort = 1;
        } else { // counterclockwise
            out.peer = (node + n_ - 1) % n_;
            out.peerPort = 0;
        }
        return out;
    }

    topo::PortSet
    adaptivePorts(NodeId, NodeId, int) const override
    {
        return {}; // force everything onto the broken escape
    }

    topo::EscapeHop
    escapeRoute(NodeId at, NodeId dst, int) const override
    {
        if (at == dst)
            return topo::EscapeHop{-1, 0};
        return topo::EscapeHop{0, 0}; // always clockwise, never VC1
    }

  private:
    int n_;
};

Packet
makePacket(NodeId src, NodeId dst, int flits)
{
    Packet p;
    p.src = src;
    p.dst = dst;
    p.cls = MsgClass::BlockResponse;
    p.flits = flits;
    return p;
}

TEST(Watchdog, SilentOnHealthySaturatedTorus)
{
    SimContext ctx;
    topo::Torus2D topo(4, 4);
    net::Network net(ctx, topo, net::NetworkParams::gs1280());

    WatchdogConfig cfg;
    cfg.checkCycles = 500;
    cfg.stallCycles = 5000;
    Watchdog dog(ctx, net, cfg);
    dog.onTrip([](const std::string &why) {
        FAIL() << "watchdog tripped on a healthy fabric: " << why;
    });
    dog.arm();

    Rng rng(3);
    int got = 0, sent = 0;
    for (NodeId node = 0; node < 16; ++node)
        net.setHandler(node, [&](const Packet &) { got += 1; });
    for (int burst = 0; burst < 30; ++burst) {
        for (NodeId src = 0; src < 16; ++src) {
            auto dst = static_cast<NodeId>(rng.below(16));
            if (dst == src)
                continue;
            net.inject(makePacket(src, dst, net::dataFlits));
            sent += 1;
        }
    }
    ctx.queue().runUntil(10 * tickMs);
    EXPECT_EQ(got, sent);
    EXPECT_FALSE(dog.tripped());
    dog.disarm();
    EXPECT_FALSE(dog.armed());
}

TEST(Watchdog, TripsOnGenuinelyWedgedFabric)
{
    SimContext ctx;
    BrokenRing ring(8);
    net::Network net(ctx, ring, net::NetworkParams::gs1280());
    for (NodeId node = 0; node < 8; ++node)
        net.setHandler(node, [](const Packet &) {});

    WatchdogConfig cfg;
    cfg.checkCycles = 300;
    cfg.stallCycles = 3000;
    Watchdog dog(ctx, net, cfg);
    std::string reason;
    dog.onTrip([&](const std::string &why) { reason = why; });
    dog.arm();

    // Saturate: every node sends long packets half way around, far
    // more than the ring's escape buffering can hold.
    for (int i = 0; i < 30; ++i)
        for (NodeId src = 0; src < 8; ++src)
            net.inject(makePacket(src, (src + 4) % 8, net::dataFlits));

    ctx.queue().runUntil(100 * tickUs);

    ASSERT_TRUE(dog.tripped()) << "deadlocked ring not detected";
    EXPECT_NE(reason.find("no forward progress"), std::string::npos)
        << reason;
    EXPECT_GT(net.inFlight(), 0);

    // The diagnostic names stuck routers and the oldest packet.
    std::string diag = dog.diagnose();
    EXPECT_NE(diag.find("in flight"), std::string::npos);
    EXPECT_NE(diag.find("node"), std::string::npos);
    EXPECT_NE(diag.find("oldest in-flight"), std::string::npos);
    EXPECT_NE(diag.find("BlockResponse"), std::string::npos);
}

TEST(Watchdog, DisarmMakesPendingPollsInert)
{
    SimContext ctx;
    topo::Torus2D topo(2, 2);
    net::Network net(ctx, topo, net::NetworkParams::gs1280());

    Watchdog dog(ctx, net);
    dog.arm();
    EXPECT_TRUE(dog.armed());
    dog.disarm();

    // The scheduled poll still fires but must do nothing — in
    // particular it must not reschedule, so the queue drains.
    ctx.queue().runUntil();
    EXPECT_TRUE(ctx.queue().empty());
    EXPECT_FALSE(dog.tripped());
}

TEST(Watchdog, MaxPacketAgeTrips)
{
    SimContext ctx;
    BrokenRing ring(8);
    net::Network net(ctx, ring, net::NetworkParams::gs1280());
    for (NodeId node = 0; node < 8; ++node)
        net.setHandler(node, [](const Packet &) {});

    WatchdogConfig cfg;
    cfg.checkCycles = 300;
    cfg.stallCycles = 1000000; // progress check effectively off
    cfg.maxPacketAgeNs = 2000.0;
    Watchdog dog(ctx, net, cfg);
    std::string reason;
    dog.onTrip([&](const std::string &why) { reason = why; });
    dog.arm();

    for (int i = 0; i < 30; ++i)
        for (NodeId src = 0; src < 8; ++src)
            net.inject(makePacket(src, (src + 4) % 8, net::dataFlits));
    ctx.queue().runUntil(100 * tickUs);

    ASSERT_TRUE(dog.tripped());
    EXPECT_NE(reason.find("old"), std::string::npos) << reason;
}

TEST(Watchdog, CoherenceProbeCatchesStuckTransaction)
{
    // Machine-level: CPU 0 chases pointers in node 3's memory; node 3
    // then dies, so node 0's outstanding misses can never fill. The
    // network itself stays live (drops count as progress) — only the
    // coherence-timeout probe can see this hang.
    auto m = sys::Machine::buildGS1280(4);

    WatchdogConfig cfg;
    cfg.checkCycles = 500;
    std::string reason;
    auto &dog = m->armWatchdog(cfg, /*coherenceTimeoutNs=*/20000.0);
    dog.onTrip([&](const std::string &why) { reason = why; });

    FaultPlan plan;
    plan.nodeDown(5 * tickUs, 3);
    m->faults().schedule(plan);

    wl::PointerChase chase(m->cpuAddr(3, 0), 1 << 20, 64, 100000);
    EXPECT_FALSE(m->run({&chase}, 2 * tickMs));

    EXPECT_TRUE(dog.tripped());
    EXPECT_NE(reason.find("coherence transaction stuck"),
              std::string::npos)
        << reason;
    EXPECT_GT(m->node(0).outstandingMisses(), 0);
}

TEST(Watchdog, SilentOnHealthyMachineRun)
{
    auto m = sys::Machine::buildGS1280(4);
    auto &dog = m->armWatchdog({}, /*coherenceTimeoutNs=*/500000.0);
    dog.onTrip([](const std::string &why) {
        FAIL() << "watchdog tripped on a healthy machine: " << why;
    });

    wl::PointerChase chase(m->cpuAddr(1, 0), 1 << 20, 64, 2000);
    EXPECT_TRUE(m->run({&chase}));
    EXPECT_FALSE(dog.tripped());
    dog.disarm();
}

} // namespace

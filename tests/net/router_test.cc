/** @file Router-level tests: VC scheme, credits, arbitration and
 *  class separation. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/network.hh"
#include "net/router.hh"
#include "topology/torus.hh"

namespace
{

using namespace gs;
using namespace gs::net;

TEST(VcScheme, IndexingRoundTrips)
{
    for (int c = 0; c < numClasses; ++c) {
        auto cls = static_cast<MsgClass>(c);
        for (int sub = 0; sub < vcSubCount; ++sub) {
            int vc = vcIndex(cls, sub);
            EXPECT_LT(vc, numVcs);
            EXPECT_EQ(vcClass(vc), cls);
        }
    }
}

TEST(VcScheme, OnlyIoLacksAdaptive)
{
    EXPECT_TRUE(mayAdapt(MsgClass::Request));
    EXPECT_TRUE(mayAdapt(MsgClass::Forward));
    EXPECT_TRUE(mayAdapt(MsgClass::BlockResponse));
    EXPECT_TRUE(mayAdapt(MsgClass::Ack));
    EXPECT_FALSE(mayAdapt(MsgClass::IO));
}

struct RouterFixture
{
    RouterFixture() : topo(4, 1), net(ctx, topo, NetworkParams::gs1280())
    {
    }

    Packet
    pkt(NodeId src, NodeId dst, MsgClass cls, int flits)
    {
        Packet p;
        p.src = src;
        p.dst = dst;
        p.cls = cls;
        p.flits = flits;
        return p;
    }

    SimContext ctx;
    topo::Torus2D topo;
    Network net;
};

/**
 * Class separation: a wall of Request packets saturating a link must
 * not stop a BlockResponse from getting through promptly — the
 * paper's "a Response packet can never block behind a Request
 * packet".
 */
TEST(Router, ResponsesDoNotBlockBehindRequests)
{
    RouterFixture f;
    Tick responseDelivered = 0;
    int requestsDelivered = 0;
    f.net.setHandler(1, [&](const Packet &p) {
        if (p.cls == MsgClass::BlockResponse)
            responseDelivered = f.ctx.now();
        else
            requestsDelivered += 1;
    });

    // Saturate 0->1 with requests, then inject one response.
    for (int i = 0; i < 200; ++i)
        f.net.inject(f.pkt(0, 1, MsgClass::Request, headerFlits));
    f.net.inject(f.pkt(0, 1, MsgClass::BlockResponse, dataFlits));

    f.ctx.queue().runUntil(10 * tickMs);
    ASSERT_GT(responseDelivered, 0u);
    EXPECT_EQ(requestsDelivered, 200);

    // The response must land long before the request wall drains:
    // 200 requests serialize 400 flits; the response needs ~40
    // cycles. Allow it half the wall.
    Tick wallNs = nsToTicks(200.0 * headerFlits * 1.304);
    EXPECT_LT(responseDelivered, wallNs / 2);
}

TEST(Router, CreditsLimitBuffering)
{
    RouterFixture f;
    // Do not attach a handler delay; just check steady throughput:
    // all packets delivered despite finite VC buffers.
    int got = 0;
    f.net.setHandler(2, [&](const Packet &) { got += 1; });
    for (int i = 0; i < 300; ++i)
        f.net.inject(f.pkt(0, 2, MsgClass::BlockResponse, dataFlits));
    f.ctx.queue().runUntil(50 * tickMs);
    EXPECT_EQ(got, 300);
}

TEST(Router, BandwidthMatchesLinkRate)
{
    RouterFixture f;
    int got = 0;
    Tick last = 0;
    f.net.setHandler(1, [&](const Packet &) {
        got += 1;
        last = f.ctx.now();
    });
    const int count = 500;
    for (int i = 0; i < count; ++i)
        f.net.inject(f.pkt(0, 1, MsgClass::BlockResponse, dataFlits));
    f.ctx.queue().runUntil(50 * tickMs);
    ASSERT_EQ(got, count);

    // 500 x 18 flits at 4.04 B / 1.304 ns per flit ~ 3.1 GB/s per
    // direction: serialization dominates, so total time ~ flits x
    // period. Allow 25% slack for pipeline fill.
    double ns = ticksToNs(last);
    double idealNs = count * dataFlits * 1.304;
    EXPECT_GT(ns, idealNs * 0.95);
    EXPECT_LT(ns, idealNs * 1.25);
}

TEST(Router, AdaptiveSpreadsOverTiedPaths)
{
    // On a 4x4 torus, 0 -> 10 has X and Y ties: East/West and
    // North/South all minimal. Under sustained traffic, more than
    // one outgoing direction should carry flits.
    SimContext ctx;
    topo::Torus2D topo(4, 4);
    Network net(ctx, topo, NetworkParams::gs1280());
    net.setHandler(10, [](const Packet &) {});
    for (int i = 0; i < 400; ++i) {
        Packet p;
        p.src = 0;
        p.dst = 10;
        p.cls = MsgClass::BlockResponse;
        p.flits = dataFlits;
        net.inject(p);
    }
    ctx.queue().runUntil(50 * tickMs);

    int usedDirections = 0;
    for (int port = 0; port < 4; ++port)
        usedDirections += net.linkBusyFlits(0, port) > 0;
    EXPECT_GE(usedDirections, 2)
        << "adaptive routing failed to use tied minimal paths";
}

TEST(Router, IoTrafficUsesEscapeOnly)
{
    // IO packets have no adaptive channel; they must still flow.
    RouterFixture f;
    int got = 0;
    f.net.setHandler(3, [&](const Packet &) { got += 1; });
    for (int i = 0; i < 50; ++i)
        f.net.inject(f.pkt(0, 3, MsgClass::IO, headerFlits));
    f.ctx.queue().runUntil(10 * tickMs);
    EXPECT_EQ(got, 50);
}

TEST(Router, VcOccupancyVisible)
{
    RouterFixture f;
    // Without a consumer on node 1... there is always a consumer
    // (ejection); instead check occupancy API returns zero when idle.
    EXPECT_EQ(f.net.router(1).vcOccupancy(0, 0), 0);
    EXPECT_EQ(f.net.router(1).injQueueDepth(MsgClass::Request), 0u);
}

// The introspection the tests above rely on — occupancy, queue
// depths, credit counts, deflection accounting — is deliberately
// public Router API (tests/net/router_ab_test.cc leans on the same
// surface to prove the SoA refactor bit-identical). The two tests
// below pin its contracts.

TEST(Router, CreditsConservedAcrossTraffic)
{
    RouterFixture f;
    const NetworkParams prm = NetworkParams::gs1280();

    // Snapshot the idle credit view of every (port, vc)...
    std::vector<int> before;
    for (NodeId n = 0; n < 4; ++n)
        for (int p = 0; p < f.topo.numPorts(n); ++p)
            for (int vc = 0; vc < numVcs; ++vc)
                before.push_back(f.net.router(n).creditsAvailable(p, vc));
    // ...which must reflect the configured buffer depths, not zeros.
    int maxCredit = 0;
    for (int c : before)
        maxCredit = std::max(maxCredit, c);
    EXPECT_EQ(maxCredit,
              std::max(prm.adaptiveVcFlits, prm.escapeVcFlits));

    int got = 0;
    f.net.setHandler(2, [&](const Packet &) { got += 1; });
    for (int i = 0; i < 200; ++i)
        f.net.inject(f.pkt(0, 2, MsgClass::BlockResponse, dataFlits));
    f.ctx.queue().runUntil(50 * tickMs);
    ASSERT_EQ(got, 200);

    // Every credit lent out during the storm came back: leaks here
    // are the classic slow-strangulation bug, invisible to
    // delivery-count tests until a much longer run wedges.
    std::vector<int> after;
    for (NodeId n = 0; n < 4; ++n)
        for (int p = 0; p < f.topo.numPorts(n); ++p)
            for (int vc = 0; vc < numVcs; ++vc)
                after.push_back(f.net.router(n).creditsAvailable(p, vc));
    EXPECT_EQ(before, after);
}

TEST(Router, DeflectionAccountingSilentOnBufferedBackend)
{
    // The net.deflect.* surface is gated on the bufferless backend;
    // the accessors backing it must stay zero under buffered traffic
    // so the gating (and buffered golden exports) cannot drift.
    RouterFixture f;
    int got = 0;
    f.net.setHandler(3, [&](const Packet &) { got += 1; });
    for (int i = 0; i < 200; ++i)
        f.net.inject(f.pkt(0, 3, MsgClass::BlockResponse, dataFlits));
    f.ctx.queue().runUntil(50 * tickMs);
    ASSERT_EQ(got, 200);
    for (NodeId n = 0; n < 4; ++n) {
        EXPECT_EQ(f.net.router(n).deflectionsSent(), 0u);
        EXPECT_EQ(f.net.router(n).latchStalls(), 0u);
        EXPECT_EQ(f.net.router(n).retreats(), 0u);
        EXPECT_EQ(f.net.router(n).sideBufferDepth(), 0u);
    }
}

} // namespace

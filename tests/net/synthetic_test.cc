/** @file Synthetic-traffic harness tests. */

#include <gtest/gtest.h>

#include "net/router.hh"
#include "net/synthetic.hh"
#include "topology/torus.hh"

namespace
{

using namespace gs;
using namespace gs::net;

struct SynFixture
{
    explicit SynFixture(int w = 4, int h = 4,
                        NetworkParams p = NetworkParams::gs1280())
        : topo(w, h), net(ctx, topo, p)
    {
    }

    SimContext ctx;
    topo::Torus2D topo;
    Network net;
};

TEST(Synthetic, LowLoadDeliversEverything)
{
    SynFixture f;
    SyntheticConfig cfg;
    cfg.injectionRate = 0.01;
    auto r = runSynthetic(f.ctx, f.net, cfg);
    EXPECT_TRUE(r.drained);
    EXPECT_GT(r.measuredPackets, 100u);
    EXPECT_NEAR(r.acceptedFlitsPerNodeCycle,
                r.offeredFlitsPerNodeCycle,
                0.3 * r.offeredFlitsPerNodeCycle);
    EXPECT_GT(r.avgLatencyNs, 10.0);
}

TEST(Synthetic, ThroughputSaturates)
{
    // Accepted throughput grows with offered load, then flattens.
    double accepted[3];
    int i = 0;
    for (double rate : {0.01, 0.05, 0.5}) {
        SynFixture f;
        SyntheticConfig cfg;
        cfg.injectionRate = rate;
        cfg.measureCycles = 4000;
        accepted[i++] = runSynthetic(f.ctx, f.net, cfg)
                            .acceptedFlitsPerNodeCycle;
    }
    EXPECT_GT(accepted[1], 2.0 * accepted[0]);
    EXPECT_GT(accepted[2], accepted[1]); // still more at saturation
    EXPECT_LT(accepted[2], 4.0);          // bounded by link capacity
}

TEST(Synthetic, LatencyRisesWithLoad)
{
    double lat[2];
    int i = 0;
    for (double rate : {0.01, 0.30}) {
        SynFixture f;
        SyntheticConfig cfg;
        cfg.injectionRate = rate;
        cfg.measureCycles = 4000;
        lat[i++] = runSynthetic(f.ctx, f.net, cfg).avgLatencyNs;
    }
    EXPECT_GT(lat[1], 1.2 * lat[0]);
}

TEST(Synthetic, NearestNeighborIsSingleHop)
{
    SynFixture f;
    SyntheticConfig cfg;
    cfg.pattern = TrafficPattern::NearestNeighbor;
    cfg.injectionRate = 0.02;
    auto r = runSynthetic(f.ctx, f.net, cfg);
    EXPECT_TRUE(r.drained);
    EXPECT_DOUBLE_EQ(r.avgHops, 1.0);
}

TEST(Synthetic, TransposeHopsMatchGeometry)
{
    SynFixture f(4, 4);
    SyntheticConfig cfg;
    cfg.pattern = TrafficPattern::Transpose;
    cfg.injectionRate = 0.02;
    auto r = runSynthetic(f.ctx, f.net, cfg);
    EXPECT_TRUE(r.drained);
    // Transpose on a 4x4 torus: diagonal nodes stay put (and are
    // excluded as self-traffic is dropped... they still inject to
    // themselves -> loopback 0 hops); mean is below the diameter.
    EXPECT_GT(r.avgHops, 0.5);
    EXPECT_LE(r.avgHops, 4.0);
}

TEST(Synthetic, HotSpotSkewsTraffic)
{
    SynFixture f;
    SyntheticConfig cfg;
    cfg.pattern = TrafficPattern::HotSpot;
    cfg.hotspotNode = 5;
    cfg.hotspotFraction = 0.8;
    cfg.injectionRate = 0.02;
    auto r = runSynthetic(f.ctx, f.net, cfg);
    EXPECT_TRUE(r.drained);
    // The hot node's outbound links stay quiet relative to inbound;
    // simply assert the run completed and produced samples.
    EXPECT_GT(r.measuredPackets, 50u);
}

TEST(Synthetic, AdaptiveBeatsDeterministicUnderLoad)
{
    // The ablation: with adaptive routing disabled, saturation
    // latency is worse on tied paths.
    auto measure = [](bool adaptive) {
        NetworkParams p = NetworkParams::gs1280();
        p.adaptiveEnabled = adaptive;
        SynFixture f(4, 4, p);
        SyntheticConfig cfg;
        cfg.injectionRate = 0.25;
        cfg.measureCycles = 4000;
        return runSynthetic(f.ctx, f.net, cfg);
    };
    auto adaptive = measure(true);
    auto dor = measure(false);
    EXPECT_GE(adaptive.acceptedFlitsPerNodeCycle,
              0.95 * dor.acceptedFlitsPerNodeCycle);
    EXPECT_LT(adaptive.avgLatencyNs, dor.avgLatencyNs);
}

TEST(Synthetic, StoreAndForwardIsSlower)
{
    auto measure = [](bool cut) {
        NetworkParams p = NetworkParams::gs1280();
        p.cutThrough = cut;
        SynFixture f(4, 4, p);
        SyntheticConfig cfg;
        cfg.injectionRate = 0.01;
        return runSynthetic(f.ctx, f.net, cfg);
    };
    auto ct = measure(true);
    auto sf = measure(false);
    EXPECT_TRUE(ct.drained);
    EXPECT_TRUE(sf.drained);
    EXPECT_GT(sf.avgLatencyNs, 1.1 * ct.avgLatencyNs);
}

TEST(Synthetic, BufferlessBackendRunsThePatterns)
{
    // The deflection backend under the same harness: everything
    // injected during the measurement window drains, and no
    // delivered packet exceeded its misroute budget (the escalation
    // cap is the livelock argument, so it is asserted wherever
    // bufferless traffic flows).
    NetworkParams p = NetworkParams::gs1280();
    p.routerKind = RouterKind::Bufferless;
    for (TrafficPattern pat : {TrafficPattern::UniformRandom,
                               TrafficPattern::Transpose,
                               TrafficPattern::HotSpot}) {
        SynFixture f(4, 4, p);
        SyntheticConfig cfg;
        cfg.pattern = pat;
        cfg.injectionRate = 0.05;
        cfg.measureCycles = 4000;
        auto r = runSynthetic(f.ctx, f.net, cfg);
        EXPECT_TRUE(r.drained);
        EXPECT_GT(r.measuredPackets, 100u);
        EXPECT_LE(f.net.stats().maxDeflections,
                  Router::kDeflectionEscalation);
    }
}

TEST(Synthetic, BufferlessSaturatesBelowBuffered)
{
    // At saturation the deflection fabric wastes cross-section
    // bandwidth on misroutes; accepted throughput must trail the
    // buffered backend's (the ablation's headline effect, kept
    // honest at unit-test scale).
    auto measure = [](RouterKind kind) {
        NetworkParams p = NetworkParams::gs1280();
        p.routerKind = kind;
        SynFixture f(4, 4, p);
        SyntheticConfig cfg;
        cfg.injectionRate = 0.5;
        cfg.measureCycles = 4000;
        return runSynthetic(f.ctx, f.net, cfg);
    };
    auto buffered = measure(RouterKind::Buffered);
    auto bufferless = measure(RouterKind::Bufferless);
    EXPECT_LT(bufferless.acceptedFlitsPerNodeCycle,
              buffered.acceptedFlitsPerNodeCycle);
}

TEST(Synthetic, DeterministicAcrossRuns)
{
    auto run = [] {
        SynFixture f;
        SyntheticConfig cfg;
        cfg.injectionRate = 0.05;
        cfg.seed = 42;
        return runSynthetic(f.ctx, f.net, cfg);
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a.measuredPackets, b.measuredPackets);
    EXPECT_DOUBLE_EQ(a.avgLatencyNs, b.avgLatencyNs);
}

} // namespace

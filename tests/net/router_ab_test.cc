/**
 * @file
 * A/B equivalence: the SoA-core buffered router (net::Router over
 * net::RouterCore) against the frozen pre-refactor implementation
 * (tests/net/legacy_router.hh).
 *
 * The refactor's contract is bit-identity: moving every per-port /
 * per-VC scalar into the Network-wide flat arrays must not change a
 * single arbitration decision, delivery tick or telemetry counter.
 * These tests replay identical randomized inject programs — source,
 * destination, class, length and injection tick all drawn from one
 * seeded Rng — on both fabrics across several torus shapes, and
 * assert the full delivery traces and every observable counter match
 * element for element. Modeled on tests/sim/event_queue_ab_test.cc.
 */

#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "legacy_router.hh"
#include "net/network.hh"
#include "sim/random.hh"
#include "topology/torus.hh"

namespace
{

using namespace gs;
using namespace gs::net;

/** One delivery observation, in arrival order at one fabric. */
struct Delivery
{
    Tick when;
    NodeId node;
    std::uint64_t id;
    int hops;
    int flits;

    bool
    operator==(const Delivery &o) const
    {
        return when == o.when && node == o.node && id == o.id &&
               hops == o.hops && flits == o.flits;
    }
};

/** One randomized inject op. */
struct Op
{
    Tick at;
    NodeId src;
    NodeId dst;
    MsgClass cls;
    int flits;
};

/**
 * The randomized program for (seed, shape): ~packets ops with
 * clustered injection times so the fabric sees both bursts (deep
 * arbitration, credit stalls) and quiet drains (tick-chain restarts).
 */
std::vector<Op>
makeProgram(std::uint64_t seed, int w, int h, int packets)
{
    Rng rng(seed);
    const int n = w * h;
    std::vector<Op> ops;
    ops.reserve(static_cast<std::size_t>(packets));
    Tick t = 0;
    for (int i = 0; i < packets; ++i) {
        // Mostly tight bursts; occasionally a long gap that lets the
        // fabric drain completely and the tick chain die.
        t += rng.below(100) < 90 ? rng.below(3) * tickUs / 1000
                                 : tickUs * (1 + rng.below(3));
        Op op;
        op.at = t + 1; // never at tick 0 (contexts start there)
        op.src = static_cast<NodeId>(rng.below(
            static_cast<std::uint64_t>(n)));
        op.dst = static_cast<NodeId>(rng.below(
            static_cast<std::uint64_t>(n)));
        op.cls = static_cast<MsgClass>(rng.below(numClasses));
        op.flits = op.cls == MsgClass::BlockResponse ? dataFlits
                                                     : headerFlits;
        ops.push_back(op);
    }
    return ops;
}

/** Drive one fabric type through @p ops; record the delivery trace. */
template <typename Net>
std::vector<Delivery>
replay(Net &net, SimContext &ctx, const std::vector<Op> &ops,
       int nodes)
{
    std::vector<Delivery> trace;
    for (NodeId node = 0; node < nodes; ++node) {
        net.setHandler(node, [&trace, &ctx, node](const Packet &p) {
            trace.push_back(
                Delivery{ctx.now(), node, p.id, p.hops, p.flits});
        });
    }
    std::uint64_t nextId = 1;
    for (const Op &op : ops) {
        Packet p;
        p.id = nextId++;
        p.src = op.src;
        p.dst = op.dst;
        p.cls = op.cls;
        p.flits = op.flits;
        ctx.queue().scheduleAt(op.at, [&net, p] { net.inject(p); });
    }
    ctx.queue().runUntil(500 * tickMs);
    return trace;
}

class RouterAB
    : public testing::TestWithParam<std::tuple<std::uint64_t, int, int>>
{
};

/**
 * The core contract: identical delivery traces (tick, node, packet,
 * hops) and identical counters, across shapes from a degenerate ring
 * to a 32-node torus. ~8k packets per combination, each traversing
 * several hops with eject/nominate/grant/credit cycles at every hop,
 * comfortably exceeds 100k randomized router decisions per seed.
 */
TEST_P(RouterAB, IdenticalDeliveryTraceAndCounters)
{
    const auto [seed, w, h] = GetParam();
    const int n = w * h;
    const int packets = 8000;
    const auto ops = makeProgram(seed, w, h, packets);

    SimContext ctxA(seed);
    topo::Torus2D topoA(w, h);
    Network a(ctxA, topoA, NetworkParams::gs1280());
    const auto traceA = replay(a, ctxA, ops, n);

    SimContext ctxB(seed);
    topo::Torus2D topoB(w, h);
    legacy::LegacyNet b(ctxB, topoB, NetworkParams::gs1280());
    const auto traceB = replay(b, ctxB, ops, n);

    // Both drained everything...
    ASSERT_EQ(a.stats().deliveredPackets,
              static_cast<std::uint64_t>(packets));
    ASSERT_EQ(a.inFlight(), 0);
    ASSERT_EQ(b.inFlight(), 0);

    // ...with the exact same delivery schedule...
    ASSERT_EQ(traceA.size(), traceB.size());
    for (std::size_t i = 0; i < traceA.size(); ++i)
        ASSERT_EQ(traceA[i], traceB[i]) << "first divergence at "
                                        << i;

    // ...the same aggregate stats...
    EXPECT_EQ(a.stats().injectedPackets, b.stats().injectedPackets);
    EXPECT_EQ(a.stats().deliveredPackets,
              b.stats().deliveredPackets);
    EXPECT_EQ(a.stats().deliveredFlits, b.stats().deliveredFlits);
    EXPECT_EQ(a.stats().latencyNs.mean(), b.stats().latencyNs.mean());
    EXPECT_EQ(a.stats().hopsPerPacket.mean(),
              b.stats().hopsPerPacket.mean());

    // ...and the same per-router telemetry, link by link and VC by
    // VC (the counters live in the SoA core on side A and in the
    // per-object structs on side B).
    for (NodeId node = 0; node < n; ++node) {
        const Router &ra = a.router(node);
        legacy::LegacyRouter &rb = b.router(node);
        for (int p = 0; p < topoA.numPorts(node); ++p) {
            EXPECT_EQ(a.linkBusyFlits(node, p),
                      b.linkBusyFlits(node, p));
            for (int vc = 0; vc < numVcs; ++vc) {
                EXPECT_EQ(ra.vcOccupancy(p, vc),
                          rb.vcOccupancy(p, vc));
                EXPECT_EQ(ra.creditsAvailable(p, vc),
                          rb.creditsAvailable(p, vc));
            }
        }
        for (int c = 0; c < numClasses; ++c) {
            auto cls = static_cast<MsgClass>(c);
            EXPECT_EQ(ra.injQueueDepth(cls), rb.injQueueDepth(cls));
            EXPECT_EQ(ra.deflectionsSent(), 0u); // buffered never
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShapes, RouterAB,
    testing::Combine(testing::Values<std::uint64_t>(1, 7, 42, 1234),
                     testing::Values(4, 8),
                     testing::Values(1, 4)),
    [](const auto &info) {
        return "seed" +
               std::to_string(std::get<0>(info.param)) + "_" +
               std::to_string(std::get<1>(info.param)) + "x" +
               std::to_string(std::get<2>(info.param));
    });

/**
 * Telemetry counters the public accessors cannot reach (sent flits,
 * credit stalls, injection stalls) are compared through the registry
 * on side A and the frozen router's counter accessors on side B, on
 * one congested shape.
 */
TEST(RouterAB, TelemetryCountersMatchUnderCongestion)
{
    const int w = 4, h = 4, n = w * h;
    // A hotspot program: everyone hammers node 0 — deep credit
    // stalls, injection backpressure, escape-VC fallbacks.
    Rng rng(99);
    std::vector<Op> ops;
    Tick t = 0;
    for (int i = 0; i < 4000; ++i) {
        t += rng.below(2);
        Op op;
        op.at = t + 1;
        op.src = static_cast<NodeId>(rng.below(n));
        op.dst = rng.below(100) < 70
                     ? 0
                     : static_cast<NodeId>(rng.below(n));
        op.cls = static_cast<MsgClass>(rng.below(numClasses));
        op.flits = op.cls == MsgClass::BlockResponse ? dataFlits
                                                     : headerFlits;
        ops.push_back(op);
    }

    SimContext ctxA(5);
    topo::Torus2D topoA(w, h);
    Network a(ctxA, topoA, NetworkParams::gs1280());
    replay(a, ctxA, ops, n);

    SimContext ctxB(5);
    topo::Torus2D topoB(w, h);
    legacy::LegacyNet b(ctxB, topoB, NetworkParams::gs1280());
    replay(b, ctxB, ops, n);

    telem::Registry reg;
    for (NodeId node = 0; node < n; ++node) {
        a.router(node).registerTelemetry(
            reg, telem::path("node", node, "router"),
            [](int p) { return std::to_string(p); });
    }

    std::uint64_t stallsA = 0, stallsB = 0;
    for (NodeId node = 0; node < n; ++node) {
        legacy::LegacyRouter &rb = b.router(node);
        const std::string prefix =
            telem::path("node", node, "router");
        for (int p = 0; p < topoA.numPorts(node); ++p) {
            const std::string pp =
                telem::path(prefix, "port", std::to_string(p));
            EXPECT_EQ(reg.value(pp + ".flits"),
                      rb.sentFlits(p));
            EXPECT_EQ(reg.value(pp + ".packets"),
                      rb.sentPackets(p));
            for (int vc = 0; vc < numVcs; ++vc) {
                const std::string vp = telem::path(pp, "vc", vc);
                EXPECT_EQ(reg.value(vp + ".flits"),
                          rb.recvFlits(p, vc));
                EXPECT_EQ(reg.value(vp + ".stalls"),
                          rb.creditStalls(p, vc));
                stallsA += static_cast<std::uint64_t>(
                    reg.value(vp + ".stalls"));
                stallsB += rb.creditStalls(p, vc);
            }
        }
        for (int c = 0; c < numClasses; ++c) {
            auto cls = static_cast<MsgClass>(c);
            EXPECT_EQ(
                reg.value(telem::path(prefix, "inj",
                                             msgClassName(cls)) +
                                 ".stalls"),
                rb.injStallCount(cls));
        }
    }
    // The hotspot must actually have exercised the stall paths, or
    // this test proves nothing.
    EXPECT_GT(stallsA, 0u);
    EXPECT_EQ(stallsA, stallsB);
}

} // namespace

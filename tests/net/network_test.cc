/** @file Network fabric tests: delivery, latency composition,
 *  loopback, statistics, and deadlock-freedom under load. */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "net/network.hh"
#include "sim/random.hh"
#include "topology/torus.hh"
#include "topology/tree.hh"

namespace
{

using namespace gs;
using namespace gs::net;

struct NetFixture
{
    explicit NetFixture(int w = 4, int h = 4,
                        NetworkParams p = NetworkParams::gs1280())
        : topo(w, h), net(ctx, topo, p)
    {
    }

    SimContext ctx;
    topo::Torus2D topo;
    Network net;
};

Packet
makePacket(NodeId src, NodeId dst, MsgClass cls = MsgClass::Request,
           int flits = headerFlits)
{
    Packet p;
    p.src = src;
    p.dst = dst;
    p.cls = cls;
    p.flits = flits;
    return p;
}

TEST(Network, DeliversSinglePacket)
{
    NetFixture f;
    bool got = false;
    f.net.setHandler(5, [&](const Packet &p) {
        got = true;
        EXPECT_EQ(p.src, 0);
        EXPECT_EQ(p.dst, 5);
        EXPECT_GE(p.hops, 2); // (0,0)->(1,1) is 2 hops minimum
    });
    f.net.inject(makePacket(0, 5));
    f.ctx.queue().runUntil();
    EXPECT_TRUE(got);
    EXPECT_EQ(f.net.stats().deliveredPackets, 1u);
    EXPECT_EQ(f.net.inFlight(), 0);
}

TEST(Network, LoopbackBypassesFabric)
{
    NetFixture f;
    bool got = false;
    f.net.setHandler(3, [&](const Packet &p) {
        got = true;
        EXPECT_EQ(p.hops, 0);
    });
    f.net.inject(makePacket(3, 3));
    f.ctx.queue().runUntil();
    EXPECT_TRUE(got);
    // No link was used.
    for (int p = 0; p < 4; ++p)
        EXPECT_EQ(f.net.linkBusyFlits(3, p), 0u);
}

TEST(Network, LongerPathsTakeLonger)
{
    std::map<int, double> latencyByHops;
    for (NodeId dst : {1, 2, 10}) { // 1, 2 and 4 hops from 0 in 4x4
        NetFixture f;
        f.net.setHandler(dst, [](const Packet &) {});
        f.net.inject(makePacket(0, dst));
        f.ctx.queue().runUntil();
        int hops = static_cast<int>(
            f.net.stats().hopsPerPacket.mean());
        latencyByHops[hops] = f.net.stats().latencyNs.mean();
    }
    ASSERT_EQ(latencyByHops.size(), 3u);
    auto it = latencyByHops.begin();
    auto [h1, l1] = *it++;
    auto [h2, l2] = *it++;
    auto [h3, l3] = *it;
    EXPECT_LT(h1, h2);
    EXPECT_LT(l1, l2);
    EXPECT_LT(l2, l3);
}

TEST(Network, DataPacketsSlowerThanHeaders)
{
    double headerNs, dataNs;
    {
        NetFixture f;
        f.net.setHandler(2, [](const Packet &) {});
        f.net.inject(makePacket(0, 2, MsgClass::Request, headerFlits));
        f.ctx.queue().runUntil();
        headerNs = f.net.stats().latencyNs.mean();
    }
    {
        NetFixture f;
        f.net.setHandler(2, [](const Packet &) {});
        f.net.inject(
            makePacket(0, 2, MsgClass::BlockResponse, dataFlits));
        f.ctx.queue().runUntil();
        dataNs = f.net.stats().latencyNs.mean();
    }
    EXPECT_GT(dataNs, headerNs + 10.0); // 16 extra flits at 767 MHz
}

TEST(Network, MinimalHopCounts)
{
    NetFixture f;
    int hops = -1;
    f.net.setHandler(10, [&](const Packet &p) { hops = p.hops; });
    f.net.inject(makePacket(0, 10)); // (0,0)->(2,2): 4 hops minimal
    f.ctx.queue().runUntil();
    EXPECT_EQ(hops, 4);
}

TEST(Network, LinkCountersAccumulate)
{
    NetFixture f;
    f.net.setHandler(1, [](const Packet &) {});
    f.net.inject(makePacket(0, 1, MsgClass::Request, 6));
    f.ctx.queue().runUntil();
    // (0,0)->(1,0): the East link out of node 0 carried 6 flits.
    EXPECT_EQ(f.net.linkBusyFlits(0, topo::portEast), 6u);
}

TEST(Network, ManyToOneAllDelivered)
{
    NetFixture f;
    int got = 0;
    f.net.setHandler(0, [&](const Packet &) { got += 1; });
    for (NodeId src = 1; src < 16; ++src)
        for (int i = 0; i < 20; ++i)
            f.net.inject(makePacket(src, 0, MsgClass::BlockResponse,
                                    dataFlits));
    f.ctx.queue().runUntil();
    EXPECT_EQ(got, 15 * 20);
    EXPECT_EQ(f.net.inFlight(), 0);
}

/**
 * Deadlock-freedom property: saturating uniform-random traffic of
 * every class on a torus (with wraparound and adaptivity in play)
 * must fully drain. This exercises the dateline escape VCs, the
 * adaptive-to-escape fallback and the two-level arbitration.
 */
class NetworkSaturation
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(NetworkSaturation, RandomTrafficDrains)
{
    auto [w, h] = GetParam();
    NetFixture f(w, h);
    Rng rng(99);
    const int n = f.topo.numNodes();
    int got = 0;

    for (NodeId node = 0; node < n; ++node)
        f.net.setHandler(node, [&](const Packet &) { got += 1; });

    const MsgClass classes[] = {MsgClass::Request, MsgClass::Forward,
                                MsgClass::BlockResponse, MsgClass::Ack,
                                MsgClass::IO};
    int sent = 0;
    for (int burst = 0; burst < 40; ++burst) {
        for (NodeId src = 0; src < n; ++src) {
            NodeId dst =
                static_cast<NodeId>(rng.below(
                    static_cast<std::uint64_t>(n)));
            if (dst == src)
                continue;
            MsgClass cls = classes[rng.below(5)];
            int flits = cls == MsgClass::BlockResponse ? dataFlits
                                                       : headerFlits;
            f.net.inject(makePacket(src, dst, cls, flits));
            sent += 1;
        }
    }

    f.ctx.queue().runUntil(100 * tickMs);
    EXPECT_EQ(got, sent) << "network failed to drain (deadlock?)";
    EXPECT_EQ(f.net.inFlight(), 0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, NetworkSaturation,
                         ::testing::Values(std::pair{4, 4},
                                           std::pair{4, 2},
                                           std::pair{8, 4},
                                           std::pair{2, 2},
                                           std::pair{5, 3}));

TEST(Network, TreeFabricDrains)
{
    SimContext ctx;
    topo::QbbTree tree(16, 4);
    Network net(ctx, tree, NetworkParams::gs320());
    int got = 0;
    for (NodeId n = 0; n < 16; ++n)
        net.setHandler(n, [&](const Packet &) { got += 1; });

    Rng rng(7);
    int sent = 0;
    for (int i = 0; i < 400; ++i) {
        auto src = static_cast<NodeId>(rng.below(16));
        auto dst = static_cast<NodeId>(rng.below(16));
        if (src == dst)
            continue;
        net.inject(makePacket(src, dst, MsgClass::BlockResponse,
                              dataFlits));
        sent += 1;
    }
    ctx.queue().runUntil(100 * tickMs);
    EXPECT_EQ(got, sent);
}

TEST(Network, ClearStatsResets)
{
    NetFixture f;
    f.net.setHandler(1, [](const Packet &) {});
    f.net.inject(makePacket(0, 1));
    f.ctx.queue().runUntil();
    EXPECT_GT(f.net.stats().deliveredPackets, 0u);
    f.net.clearStats();
    EXPECT_EQ(f.net.stats().deliveredPackets, 0u);
    EXPECT_EQ(f.net.linkBusyFlits(0, topo::portEast), 0u);
}

} // namespace

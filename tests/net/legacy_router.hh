/**
 * @file
 * Frozen copy of the pre-SoA buffered router, for the A/B
 * equivalence harness (router_ab_test.cc).
 *
 * LegacyRouter is the array-of-structures implementation the SoA
 * refactor replaced, kept verbatim except that it talks to LegacyNet
 * — a minimal single-domain replica of the Network's serial event
 * plumbing (injection, arrival/credit wires, tick chain, delivery).
 * Driving both fabrics with the same randomized program must produce
 * the same delivery trace and the same counters; see the test for
 * the exact contract. Do NOT "fix" behaviour here: this file is the
 * reference the production router is measured against.
 */

#ifndef GS_TESTS_NET_LEGACY_ROUTER_HH
#define GS_TESTS_NET_LEGACY_ROUTER_HH

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hh"
#include "net/packet_pool.hh"
#include "net/params.hh"
#include "sim/context.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "topology/topology.hh"

namespace gs::net::legacy
{

class LegacyNet;

/** The pre-refactor router: per-object state, AoS layout. */
class LegacyRouter
{
  public:
    LegacyRouter(LegacyNet &net, NodeId id);

    LegacyRouter(const LegacyRouter &) = delete;
    LegacyRouter &operator=(const LegacyRouter &) = delete;

    void tick(Tick now);
    bool idle() const { return buffered == 0 && injWaiting == 0; }
    NodeId node() const { return id; }
    void receive(int in_port, int vc, PacketHandle h);
    void creditReturn(int out_port, int vc, int flits);
    void inject(PacketHandle h);

    int vcOccupancy(int in_port, int vc) const
    {
        return vcState[slot(in_port, vc)].flitsUsed;
    }

    std::size_t injQueueDepth(MsgClass cls) const
    {
        return injQs[static_cast<std::size_t>(cls)].size();
    }

    int creditsAvailable(int out_port, int vc) const
    {
        return outputs[static_cast<std::size_t>(out_port)]
            .credits[static_cast<std::size_t>(vc)];
    }

    /** @name Counter access for the A/B comparison */
    /// @{
    std::uint64_t sentFlits(int port) const
    {
        return outputs[static_cast<std::size_t>(port)].sentFlits;
    }
    std::uint64_t sentPackets(int port) const
    {
        return outputs[static_cast<std::size_t>(port)].sentPackets;
    }
    std::uint64_t recvFlits(int port, int vc) const
    {
        return vcState[slot(port, vc)].recvFlits;
    }
    std::uint64_t creditStalls(int port, int vc) const
    {
        return vcState[slot(port, vc)].creditStalls;
    }
    std::uint64_t injStallCount(MsgClass cls) const
    {
        return injStalls[static_cast<std::size_t>(cls)];
    }
    /// @}

  private:
    struct Route
    {
        int outPort = -1;
        int outVc = -1;
    };

    struct Nominee
    {
        int inPort;
        int vc;
        Route route;
    };

    struct VcState
    {
        int flitsUsed = 0;
        std::uint64_t recvFlits = 0;
        std::uint64_t creditStalls = 0;
    };

    struct Output
    {
        bool connected = false;
        std::array<int, numVcs> credits{};
        Tick busyUntil = 0;
        int wireCycles = 0;
        int rrSrc = 0;

        std::uint64_t sentFlits = 0;
        std::uint64_t sentPackets = 0;
    };

    std::size_t
    slot(int in_port, int vc) const
    {
        return static_cast<std::size_t>(in_port) *
                   static_cast<std::size_t>(numVcs) +
               static_cast<std::size_t>(vc);
    }

    bool chooseRoute(const Packet &pkt, Route &out,
                     bool &unroutable) const;
    int vcCapacity(int vc) const;
    void ejectPass(Tick now);
    void nominate(Tick now);
    void grant(Tick now);
    PacketHandle popHead(int in_port, int vc);

    LegacyNet &net;
    NodeId id;

    std::vector<HandleQueue> vcQ;
    std::vector<VcState> vcState;
    std::vector<int> rrVc;
    std::vector<Output> outputs;
    std::array<HandleQueue, numClasses> injQs;
    std::array<std::uint64_t, numClasses> injStalls{};
    int injRrClass = 0;

    int buffered = 0;
    int injWaiting = 0;

    std::vector<Nominee> noms;
};

/** Cumulative traffic statistics (mirror of NetworkStats). */
struct LegacyStats
{
    std::uint64_t injectedPackets = 0;
    std::uint64_t deliveredPackets = 0;
    std::uint64_t deliveredFlits = 0;
    stats::Average latencyNs;
    stats::Average hopsPerPacket;
};

/**
 * The serial single-domain slice of the Network, frozen alongside
 * the legacy router: injection staging, the arrival/credit wires,
 * the self-scheduling tick chain, and delivery accounting — exactly
 * the code paths the production Network runs with one domain and a
 * healthy fabric.
 */
class LegacyNet
{
  public:
    using Handler = std::function<void(const Packet &)>;

    LegacyNet(SimContext &context, const topo::Topology &topo,
              NetworkParams params)
        : ctx(context), topo_(topo), prm(params),
          tickPeriod(params.period())
    {
        const int n = topo.numNodes();
        handlers.resize(static_cast<std::size_t>(n));
        linkFlits.resize(static_cast<std::size_t>(n));
        routers.reserve(static_cast<std::size_t>(n));
        for (NodeId node = 0; node < n; ++node) {
            routers.push_back(
                std::make_unique<LegacyRouter>(*this, node));
            linkFlits[static_cast<std::size_t>(node)].assign(
                static_cast<std::size_t>(topo.numPorts(node)), 0);
        }
    }

    void
    setHandler(NodeId node, Handler handler)
    {
        handlers[static_cast<std::size_t>(node)] = std::move(handler);
    }

    void
    inject(Packet pkt)
    {
        gs_assert(pkt.src >= 0 && pkt.src < topo_.numNodes() &&
                      pkt.dst >= 0 && pkt.dst < topo_.numNodes() &&
                      pkt.flits > 0,
                  "legacy inject: malformed packet");
        pkt.injected = ctx.now();
        st.injectedPackets += 1;
        flying += 1;
        PacketHandle h = pool_.acquire(pkt);

        if (pkt.src == pkt.dst) {
            Tick delay = static_cast<Tick>(prm.injectionCycles +
                                           prm.ejectionCycles) *
                         tickPeriod;
            NodeId node = pkt.dst;
            ctx.queue().schedule(delay,
                                 [this, node, h] { deliverNow(node, h); });
            return;
        }

        Tick delay =
            static_cast<Tick>(prm.injectionCycles) * tickPeriod;
        NodeId node = pkt.src;
        ctx.queue().schedule(delay, [this, node, h] {
            routers[static_cast<std::size_t>(node)]->inject(h);
        });
    }

    /** @name Router-facing plumbing (serial Network equivalents) */
    /// @{
    PacketPool &poolOf(NodeId) { return pool_; }
    const PacketPool &poolOf(NodeId) const { return pool_; }
    SimContext &ctxOf(NodeId) { return ctx; }
    const topo::Topology &topology() const { return topo_; }
    const NetworkParams &params() const { return prm; }
    Tick period() const { return tickPeriod; }
    bool degraded() const { return false; }

    void
    countLinkFlits(NodeId node, int port, int flits)
    {
        linkFlits[std::size_t(node)][std::size_t(port)] +=
            static_cast<std::uint64_t>(flits);
    }

    void
    dropPacket(NodeId, PacketHandle, const char *why)
    {
        gs_fatal("legacy fabric dropped a packet (", why,
                 "): the A/B harness runs healthy fabrics only");
    }

    void
    scheduleArrival(NodeId, NodeId to, int in_port, int vc,
                    PacketHandle h, int delay_cycles)
    {
        const Tick delay =
            static_cast<Tick>(delay_cycles) * tickPeriod;
        ctx.queue().schedule(delay, [this, to, in_port, vc, h] {
            routers[static_cast<std::size_t>(to)]->receive(in_port,
                                                           vc, h);
        });
    }

    void
    scheduleCredit(NodeId at_node, int in_port, int vc, int flits)
    {
        topo::Port link = topo_.port(at_node, in_port);
        gs_assert(link.connected(), "credit for unconnected port");
        NodeId peer = link.peer;
        int peerPort = link.peerPort;
        const Tick delay =
            static_cast<Tick>(prm.creditCycles) * tickPeriod;
        ctx.queue().schedule(delay, [this, peer, peerPort, vc, flits] {
            routers[static_cast<std::size_t>(peer)]->creditReturn(
                peerPort, vc, flits);
        });
    }

    void
    deliverLocal(NodeId node, PacketHandle h)
    {
        int flits = pool_.get(h).flits;
        int tail = prm.cutThrough && flits > headerFlits
                       ? flits - headerFlits
                       : 0;
        Tick delay =
            static_cast<Tick>(prm.ejectionCycles + tail) * tickPeriod;
        ctx.queue().schedule(delay,
                             [this, node, h] { deliverNow(node, h); });
    }

    void
    activate(NodeId)
    {
        if (ticking)
            return;
        ticking = true;
        const Clock clk(tickPeriod);
        Tick edge = clk.nextEdge(ctx.now() + 1);
        ctx.queue().scheduleAt(edge, [this] { tickAll(); });
    }
    /// @}

    /** @name Observation for the A/B comparison */
    /// @{
    const LegacyStats &stats() const { return st; }
    int inFlight() const { return flying; }
    std::uint64_t
    linkBusyFlits(NodeId node, int port) const
    {
        return linkFlits[std::size_t(node)][std::size_t(port)];
    }
    LegacyRouter &router(NodeId node)
    {
        return *routers[std::size_t(node)];
    }
    /// @}

  private:
    void
    tickAll()
    {
        const Tick now = ctx.now();
        bool any = false;
        for (auto &router : routers) {
            router->tick(now);
            any = any || !router->idle();
        }
        if (any)
            ctx.queue().schedule(tickPeriod, [this] { tickAll(); });
        else
            ticking = false;
    }

    void
    deliverNow(NodeId node, PacketHandle h)
    {
        const Packet &pkt = pool_.get(h);
        st.deliveredPackets += 1;
        st.deliveredFlits += static_cast<std::uint64_t>(pkt.flits);
        st.latencyNs.sample(ticksToNs(ctx.now() - pkt.injected));
        st.hopsPerPacket.sample(static_cast<double>(pkt.hops));
        flying -= 1;
        auto &handler = handlers[static_cast<std::size_t>(node)];
        if (handler)
            handler(pkt);
        pool_.release(h);
    }

    SimContext &ctx;
    const topo::Topology &topo_;
    NetworkParams prm;
    Tick tickPeriod;

    PacketPool pool_;
    std::vector<std::unique_ptr<LegacyRouter>> routers;
    std::vector<Handler> handlers;
    std::vector<std::vector<std::uint64_t>> linkFlits;
    LegacyStats st;
    int flying = 0;
    bool ticking = false;
};

// ------------------------------------------------------------------
// LegacyRouter implementation: verbatim pre-SoA logic.
// ------------------------------------------------------------------

inline LegacyRouter::LegacyRouter(LegacyNet &network, NodeId node)
    : net(network), id(node)
{
    const auto &topo = net.topology();
    const auto &prm = net.params();
    const int ports = topo.numPorts(id);

    vcQ.resize(static_cast<std::size_t>(ports) * numVcs);
    vcState.resize(static_cast<std::size_t>(ports) * numVcs);
    rrVc.assign(static_cast<std::size_t>(ports), 0);
    outputs.resize(static_cast<std::size_t>(ports));

    for (int p = 0; p < ports; ++p) {
        auto &out = outputs[static_cast<std::size_t>(p)];
        topo::Port link = topo.port(id, p);
        out.connected = link.connected();
        if (!out.connected)
            continue;
        out.wireCycles = prm.wireCycles(link.kind);
        for (int vc = 0; vc < numVcs; ++vc) {
            out.credits[static_cast<std::size_t>(vc)] =
                vc % vcSubCount == vcAdaptive ? prm.adaptiveVcFlits
                                              : prm.escapeVcFlits;
        }
    }

    gs_assert(prm.escapeVcFlits >= dataFlits &&
                  prm.adaptiveVcFlits >= dataFlits,
              "VC buffers must hold a whole data packet (cut-through)");
}

inline void
LegacyRouter::receive(int in_port, int vc, PacketHandle h)
{
    Packet &pkt = net.poolOf(id).get(h);
    auto &st = vcState[slot(in_port, vc)];
    pkt.hops += 1;
    if (pkt.span.id != 0 && pkt.span.phase == 0 && pkt.dst != id)
        pkt.span.advance(net.ctxOf(id).now(), trace::VcWait);
    st.flitsUsed += pkt.flits;
    st.recvFlits += static_cast<std::uint64_t>(pkt.flits);
    vcQ[slot(in_port, vc)].push(h);
    buffered += 1;
    net.activate(id);
}

inline void
LegacyRouter::creditReturn(int out_port, int vc, int flits)
{
    auto &out = outputs[static_cast<std::size_t>(out_port)];
    auto &credits = out.credits[static_cast<std::size_t>(vc)];
    credits += flits;
    if (net.degraded() && credits > vcCapacity(vc))
        credits = vcCapacity(vc);
    net.activate(id);
}

inline int
LegacyRouter::vcCapacity(int vc) const
{
    const auto &prm = net.params();
    return vc % vcSubCount == vcAdaptive ? prm.adaptiveVcFlits
                                         : prm.escapeVcFlits;
}

inline void
LegacyRouter::inject(PacketHandle h)
{
    const Packet &pkt = net.poolOf(id).get(h);
    injQs[static_cast<std::size_t>(pkt.cls)].push(h);
    injWaiting += 1;
    net.activate(id);
}

inline bool
LegacyRouter::chooseRoute(const Packet &pkt, Route &route,
                          bool &unroutable) const
{
    const auto &topo = net.topology();

    if (net.params().adaptiveEnabled && mayAdapt(pkt.cls)) {
        int vc = vcIndex(pkt.cls, vcAdaptive);
        int bestPort = -1, bestCredits = -1;
        for (int p : topo.adaptivePorts(id, pkt.dst, pkt.hops)) {
            const auto &out = outputs[static_cast<std::size_t>(p)];
            int credits = out.credits[static_cast<std::size_t>(vc)];
            if (credits >= pkt.flits && credits > bestCredits) {
                bestCredits = credits;
                bestPort = p;
            }
        }
        if (bestPort >= 0) {
            route = Route{bestPort, vc};
            return true;
        }
    }

    topo::EscapeHop esc = topo.escapeRoute(id, pkt.dst, 0);
    if (esc.port < 0) {
        gs_assert(net.degraded(), "escape route missing at node ", id,
                  " for dst ", pkt.dst);
        unroutable = true;
        return false;
    }
    int vc = vcIndex(pkt.cls, esc.vc == 0 ? vcEscape0 : vcEscape1);
    const auto &out = outputs[static_cast<std::size_t>(esc.port)];
    if (out.credits[static_cast<std::size_t>(vc)] >= pkt.flits) {
        route = Route{esc.port, vc};
        return true;
    }
    return false;
}

inline PacketHandle
LegacyRouter::popHead(int in_port, int vc)
{
    auto &q = vcQ[slot(in_port, vc)];
    gs_assert(!q.empty());
    PacketHandle h = q.front();
    q.pop();
    int flits = net.poolOf(id).get(h).flits;
    vcState[slot(in_port, vc)].flitsUsed -= flits;
    buffered -= 1;
    net.scheduleCredit(id, in_port, vc, flits);
    return h;
}

inline void
LegacyRouter::ejectPass(Tick now)
{
    (void)now;
    const PacketPool &pool = net.poolOf(id);
    const int ports = static_cast<int>(outputs.size());
    for (int p = 0; p < ports; ++p) {
        for (int vc = 0; vc < numVcs; ++vc) {
            auto &q = vcQ[slot(p, vc)];
            while (!q.empty() && pool.get(q.front()).dst == id) {
                PacketHandle h = popHead(p, vc);
                net.deliverLocal(id, h);
            }
        }
    }
}

inline void
LegacyRouter::nominate(Tick now)
{
    noms.clear();
    PacketPool &pool = net.poolOf(id);

    const int ports = static_cast<int>(outputs.size());
    for (int p = 0; p < ports; ++p) {
        for (int k = 0; k < numVcs; ++k) {
            int vc = (rrVc[static_cast<std::size_t>(p)] + k) % numVcs;
            auto &q = vcQ[slot(p, vc)];
            Route route;
            bool nominated = false;
            while (!q.empty()) {
                bool unroutable = false;
                if (chooseRoute(pool.get(q.front()), route,
                                unroutable)) {
                    nominated = true;
                    break;
                }
                if (!unroutable) {
                    vcState[slot(p, vc)].creditStalls += 1;
                    break;
                }
                PacketHandle h = popHead(p, vc);
                net.dropPacket(id, h, "unroutable");
            }
            if (!nominated)
                continue;
            if (outputs[static_cast<std::size_t>(route.outPort)]
                    .busyUntil > now)
                continue;
            noms.push_back(Nominee{p, vc, route});
            rrVc[static_cast<std::size_t>(p)] = (vc + 1) % numVcs;
            break;
        }
    }

    for (int k = 0; k < numClasses; ++k) {
        int cls = (injRrClass + k) % numClasses;
        auto &q = injQs[static_cast<std::size_t>(cls)];
        Route route;
        bool nominated = false;
        while (!q.empty()) {
            bool unroutable = false;
            if (chooseRoute(pool.get(q.front()), route, unroutable)) {
                nominated = true;
                break;
            }
            if (!unroutable) {
                injStalls[static_cast<std::size_t>(cls)] += 1;
                break;
            }
            net.dropPacket(id, q.front(), "unroutable");
            q.pop();
            injWaiting -= 1;
        }
        if (!nominated)
            continue;
        if (outputs[static_cast<std::size_t>(route.outPort)].busyUntil
            > now)
            continue;
        noms.push_back(Nominee{-1, cls, route});
        injRrClass = (cls + 1) % numClasses;
        break;
    }
}

inline void
LegacyRouter::grant(Tick now)
{
    const auto &topo = net.topology();
    const auto &prm = net.params();
    PacketPool &pool = net.poolOf(id);
    const int srcSlots = static_cast<int>(outputs.size()) + 1;

    for (std::size_t o = 0; o < outputs.size(); ++o) {
        auto &out = outputs[o];
        if (!out.connected || out.busyUntil > now)
            continue;

        const Nominee *winner = nullptr;
        int bestRank = srcSlots;
        for (const auto &nom : noms) {
            if (nom.route.outPort != static_cast<int>(o))
                continue;
            int src = nom.inPort < 0 ? srcSlots - 1 : nom.inPort;
            int rank = (src - out.rrSrc + srcSlots) % srcSlots;
            if (rank < bestRank) {
                bestRank = rank;
                winner = &nom;
            }
        }
        if (!winner)
            continue;

        PacketHandle h;
        if (winner->inPort < 0) {
            auto &q = injQs[static_cast<std::size_t>(winner->vc)];
            h = q.front();
            q.pop();
            injWaiting -= 1;
        } else {
            h = popHead(winner->inPort, winner->vc);
        }
        Packet &pkt = pool.get(h);

        if (pkt.span.id != 0 && pkt.span.phase == 0)
            pkt.span.advance(now, trace::Link);

        int vc = winner->route.outVc;
        out.credits[static_cast<std::size_t>(vc)] -= pkt.flits;
        gs_assert(out.credits[static_cast<std::size_t>(vc)] >= 0,
                  "credit underflow at node ", id, " port ", o);
        out.busyUntil =
            now + static_cast<Tick>(pkt.flits) * net.period();
        out.sentFlits += static_cast<std::uint64_t>(pkt.flits);
        out.sentPackets += 1;
        out.rrSrc =
            ((winner->inPort < 0 ? srcSlots - 1 : winner->inPort) + 1) %
            srcSlots;

        net.countLinkFlits(id, static_cast<int>(o), pkt.flits);

        topo::Port link = topo.port(id, static_cast<int>(o));
        int delay = prm.pipelineCycles + out.wireCycles +
                    (prm.cutThrough ? std::min(pkt.flits, headerFlits)
                                    : pkt.flits);
        net.scheduleArrival(id, link.peer, link.peerPort, vc, h, delay);
    }
}

inline void
LegacyRouter::tick(Tick now)
{
    if (idle())
        return;
    ejectPass(now);
    if (buffered == 0 && injWaiting == 0)
        return;
    nominate(now);
    if (!noms.empty())
        grant(now);
}

} // namespace gs::net::legacy

#endif // GS_TESTS_NET_LEGACY_ROUTER_HH

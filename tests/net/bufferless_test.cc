/**
 * @file
 * The bufferless deflection (hot-potato) router backend: property
 * and fuzz coverage of its three contracts.
 *
 *  1. No packet loss: with one-packet latches and no buffers, every
 *     injected packet must still be delivered exactly once and the
 *     fabric must drain — deflection moves contention, it never
 *     drops.
 *  2. Livelock freedom: age-rank arbitration (oldest packet wins
 *     every port fight it enters) bounds the worst-case deflection
 *     count of any packet. The observed maximum across heavy
 *     randomized and hotspot loads must stay under a fixed golden
 *     bound — a livelock regression shows up as a runaway here long
 *     before a test would hang.
 *  3. Engine independence: the backend is part of the machine's
 *     deterministic identity — byte-identical telemetry exports at
 *     --threads 1/2/8 (pinned tile shape), byte-identical
 *     continuation across checkpoint save/restore, and restore
 *     rejection when the snapshot's router kind differs.
 */

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/network.hh"
#include "sim/random.hh"
#include "sim/telemetry.hh"
#include "system/machine.hh"
#include "topology/torus.hh"
#include "workload/load_test.hh"

namespace
{

using namespace gs;
using namespace gs::net;

/**
 * Golden livelock bound: the most deflections any single packet is
 * allowed to absorb across every load in this file. Age-rank
 * arbitration guarantees a finite bound (the globally oldest packet
 * never deflects, so ages advance monotonically); the observed
 * maximum under the hotspot fuzz below is far lower. A livelock
 * regression — e.g. breaking the age tie-break — blows through this
 * immediately.
 */
constexpr std::uint64_t kDeflectionBound = 256;

NetworkParams
bufferlessParams()
{
    NetworkParams p = NetworkParams::gs1280();
    p.routerKind = RouterKind::Bufferless;
    return p;
}

/** Fixture: a raw bufferless fabric on a WxH torus. */
struct Fab
{
    SimContext ctx;
    topo::Torus2D topo;
    Network net;
    std::uint64_t delivered = 0;

    Fab(int w, int h, std::uint64_t seed = 1)
        : ctx(seed), topo(w, h), net(ctx, topo, bufferlessParams())
    {
        for (NodeId n = 0; n < w * h; ++n)
            net.setHandler(n, [this](const Packet &) { ++delivered; });
    }
};

Packet
pkt(NodeId src, NodeId dst, MsgClass cls = MsgClass::Request,
    int flits = headerFlits)
{
    Packet p;
    p.src = src;
    p.dst = dst;
    p.cls = cls;
    p.flits = flits;
    return p;
}

TEST(Bufferless, SinglePacketTakesMinimalRoute)
{
    Fab f(4, 4);
    f.net.inject(pkt(0, 10)); // (0,0) -> (2,2): 4 hops on a 4x4 torus
    f.ctx.queue().runUntil(10 * tickUs);
    EXPECT_EQ(f.delivered, 1u);
    EXPECT_EQ(f.net.inFlight(), 0);
    EXPECT_EQ(f.net.stats().hopsPerPacket.mean(), 4.0);
    // An uncontended packet never deflects.
    EXPECT_EQ(f.net.stats().maxDeflections, 0u);
}

TEST(Bufferless, LoopbackBypassesFabric)
{
    Fab f(4, 4);
    f.net.inject(pkt(5, 5));
    f.ctx.queue().runUntil(tickUs);
    EXPECT_EQ(f.delivered, 1u);
    EXPECT_EQ(f.net.stats().hopsPerPacket.mean(), 0.0);
}

/**
 * Head-on contention: opposite corners exchange bursts through the
 * torus center. Every packet still lands, and the deflection
 * counters actually move — the backend is exercising its defining
 * mechanism, not silently serializing.
 */
TEST(Bufferless, HeadOnBurstsAllDeliverWithDeflections)
{
    Fab f(8, 8);
    const int burst = 200;
    for (int i = 0; i < burst; ++i) {
        f.net.inject(pkt(0, 36));  // (0,0) -> (4,4)
        f.net.inject(pkt(36, 0));  // and back
        f.net.inject(pkt(7, 35));  // (7,0) -> (3,4)
        f.net.inject(pkt(56, 28)); // (0,7) -> (4,3)
    }
    f.ctx.queue().runUntil(50 * tickMs);
    EXPECT_EQ(f.delivered, 4u * burst);
    EXPECT_EQ(f.net.inFlight(), 0);

    std::uint64_t deflections = 0;
    for (NodeId n = 0; n < 64; ++n)
        deflections += f.net.router(n).deflectionsSent();
    EXPECT_GT(deflections, 0u) << "burst never contended a port";
    EXPECT_LE(f.net.stats().maxDeflections, kDeflectionBound);
}

/**
 * Fuzz: random traffic across shapes and seeds, with a hotspot bias
 * (70% of packets target node 0) that produces the deepest deflection
 * storms. Properties checked per run: exact delivery count, drained
 * fabric, bounded per-packet deflections.
 */
TEST(Bufferless, FuzzNoLossBoundedDeflections)
{
    struct Shape
    {
        int w, h;
    };
    for (const Shape shape : {Shape{4, 1}, Shape{4, 4}, Shape{8, 2}}) {
        for (std::uint64_t seed : {3ull, 17ull, 91ull}) {
            SCOPED_TRACE(std::to_string(shape.w) + "x" +
                         std::to_string(shape.h) + " seed " +
                         std::to_string(seed));
            Fab f(shape.w, shape.h, seed);
            Rng rng(seed);
            const int n = shape.w * shape.h;
            const int packets = 3000;
            Tick t = 0;
            for (int i = 0; i < packets; ++i) {
                t += rng.below(3);
                const auto src =
                    static_cast<NodeId>(rng.below(n));
                const auto dst =
                    rng.below(100) < 70
                        ? 0
                        : static_cast<NodeId>(rng.below(n));
                const auto cls =
                    static_cast<MsgClass>(rng.below(numClasses));
                const int flits = cls == MsgClass::BlockResponse
                                      ? dataFlits
                                      : headerFlits;
                f.ctx.queue().scheduleAt(
                    t + 1, [&f, p = pkt(src, dst, cls, flits)] {
                        f.net.inject(p);
                    });
            }
            f.ctx.queue().runUntil(500 * tickMs);
            EXPECT_EQ(f.delivered,
                      static_cast<std::uint64_t>(packets));
            EXPECT_EQ(f.net.inFlight(), 0);
            EXPECT_EQ(f.net.stats().deliveredPackets,
                      static_cast<std::uint64_t>(packets));
            EXPECT_LE(f.net.stats().maxDeflections,
                      kDeflectionBound);
        }
    }
}

/** The deflection telemetry is registered — and only for this
 * backend (buffered exports must stay byte-identical). */
TEST(Bufferless, DeflectTelemetryGatedOnBackend)
{
    {
        Fab f(4, 4);
        telem::Registry reg;
        f.net.registerTelemetry(reg, "net");
        EXPECT_TRUE(reg.has("net.deflect.count"));
        EXPECT_TRUE(reg.has("net.deflect.latch_stalls"));
        EXPECT_TRUE(reg.has("net.deflect.max_per_packet"));
    }
    {
        SimContext ctx;
        topo::Torus2D topo(4, 4);
        Network net(ctx, topo, NetworkParams::gs1280());
        telem::Registry reg;
        net.registerTelemetry(reg, "net");
        EXPECT_FALSE(reg.has("net.deflect.count"));
        EXPECT_FALSE(reg.has("net.deflect.latch_stalls"));
        EXPECT_FALSE(reg.has("net.deflect.max_per_packet"));
    }
}

// ---------------------------------------------------------------
// Machine-level: engine independence and checkpointing.
// ---------------------------------------------------------------

struct Rig
{
    std::unique_ptr<sys::Machine> m;
    std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
};

Rig
makeRig(int cpus, int threads, std::uint64_t seed, std::uint64_t reads,
        RouterKind kind = RouterKind::Bufferless)
{
    Rig r;
    sys::Gs1280Options opt;
    opt.seed = seed;
    opt.threads = threads;
    // Pin one decomposition so different thread counts stay
    // byte-comparable (the auto shape tracks --threads).
    opt.tileRows = 2;
    opt.tileCols = 2;
    opt.routerKind = kind;
    r.m = sys::Machine::buildGS1280(cpus, opt);
    for (int c = 0; c < cpus; ++c) {
        r.gens.push_back(std::make_unique<wl::RandomRemoteReads>(
            static_cast<NodeId>(c), cpus, 8ULL << 20, reads,
            Rng::deriveSeed(seed, static_cast<std::uint64_t>(c))));
        r.sources.push_back(r.gens.back().get());
    }
    return r;
}

std::string
exportOf(const sys::Machine &m)
{
    std::ostringstream os;
    telem::exportJson(os, m.telemetry());
    return os.str();
}

/**
 * Drop the engine-shaped counters (event firings, pool recycling,
 * par.* engine stats) that legitimately differ between the serial
 * and tiled engines, keeping every simulation observable: all net.*
 * stats including the deflect gauges, and every per-node router /
 * cache / core counter.
 */
std::string
simulationView(const std::string &json)
{
    std::istringstream is(json);
    std::ostringstream os;
    std::string line;
    while (std::getline(is, line)) {
        if (line.find("\"eq.") != std::string::npos ||
            line.find("\"par.") != std::string::npos ||
            line.find("packet_pool") != std::string::npos)
            continue;
        // The serial export ends where the parallel one continues
        // with par.*; dropping those lines leaves a dangling comma
        // on the preceding entry. Separators carry no information
        // here — every retained line is compared in order.
        if (!line.empty() && line.back() == ',')
            line.pop_back();
        os << line << '\n';
    }
    return os.str();
}

/**
 * Bit-identity across engines: a full GS1280 run under the
 * bufferless backend produces the same simulation counters at
 * --threads 1, 2 and 8 with a pinned 2x2 tile shape — and the two
 * parallel runs match byte-for-byte on the raw export. Deflection
 * decisions depend only on per-node state and the deterministic tick
 * order, so neither the tiled decomposition nor the worker count can
 * perturb them.
 */
TEST(BufferlessMachine, ExportsIdenticalAcrossThreadCounts)
{
    std::string want, wantParallel;
    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        Rig r = makeRig(16, threads, 7, 60);
        ASSERT_TRUE(r.m->run(r.sources));
        EXPECT_GT(r.m->telemetry().value("net.deflect.count"), 0.0);
        EXPECT_LE(
            r.m->telemetry().value("net.deflect.max_per_packet"),
            static_cast<double>(kDeflectionBound));
        const std::string raw = exportOf(*r.m);
        const std::string got = simulationView(raw);
        if (want.empty())
            want = got;
        else
            EXPECT_EQ(got, want)
                << "thread count changed bufferless behavior";
        if (threads == 1)
            continue;
        // Parallel runs of any worker count share one decomposition
        // and must agree on the engine counters too.
        if (wantParallel.empty())
            wantParallel = raw;
        else
            EXPECT_EQ(raw, wantParallel)
                << "worker count changed the parallel engine's view";
    }
}

/**
 * The checkpoint contract under bufferless: run, save mid-stream,
 * continue — the restored run's export is byte-identical to the
 * uninterrupted one. Latches, deflection counters and the per-packet
 * deflection counts all cross the snapshot.
 */
TEST(BufferlessMachine, CheckpointContinuesByteIdentically)
{
    const std::string prefix =
        testing::TempDir() + "bufferless_ckpt";

    // Probe for the natural end, then checkpoint twice along the way.
    Rig probe = makeRig(16, 2, 11, 50);
    ASSERT_TRUE(probe.m->run(probe.sources));
    const Tick every = probe.m->ctx().now() / 3;

    Rig a = makeRig(16, 2, 11, 50);
    a.m->setCheckpointPolicy(every, prefix);
    ASSERT_TRUE(a.m->run(a.sources));
    const std::string want = exportOf(*a.m);
    const std::uint64_t snaps = a.m->checkpointSaves();
    ASSERT_GE(snaps, 2u);

    for (std::uint64_t k = 1; k <= snaps; ++k) {
        SCOPED_TRACE("snapshot " + std::to_string(k));
        Rig b = makeRig(16, 2, 11, 50);
        b.m->setCheckpointPolicy(every, prefix + "_b");
        std::string err;
        ASSERT_TRUE(b.m->restore(
            prefix + "." + std::to_string(k) + ".gsckpt", b.sources,
            &err))
            << err;
        ASSERT_TRUE(b.m->run(b.sources));
        EXPECT_EQ(exportOf(*b.m), want);
        for (std::uint64_t n = 1; n <= b.m->checkpointSaves(); ++n)
            std::remove((prefix + "_b." + std::to_string(n) +
                         ".gsckpt")
                            .c_str());
    }
    for (std::uint64_t n = 1; n <= snaps; ++n)
        std::remove(
            (prefix + "." + std::to_string(n) + ".gsckpt").c_str());
}

/**
 * The router backend is part of the machine's identity: a snapshot
 * saved under one backend must refuse to restore into a machine
 * built with the other, in both directions, with an error naming
 * the mismatch.
 */
TEST(BufferlessMachine, RestoreRejectsRouterKindMismatch)
{
    const std::string snap =
        testing::TempDir() + "router_kind_mismatch.gsckpt";
    std::string err;
    {
        Rig a = makeRig(16, 1, 3, 40, RouterKind::Buffered);
        ASSERT_TRUE(a.m->run(a.sources));
        ASSERT_TRUE(a.m->save(snap, &err)) << err;
        Rig b = makeRig(16, 1, 3, 40, RouterKind::Bufferless);
        EXPECT_FALSE(b.m->restore(snap, b.sources, &err));
        EXPECT_NE(err.find("router backend"), std::string::npos)
            << err;
    }
    {
        Rig a = makeRig(16, 1, 3, 40, RouterKind::Bufferless);
        ASSERT_TRUE(a.m->run(a.sources));
        ASSERT_TRUE(a.m->save(snap, &err)) << err;
        Rig b = makeRig(16, 1, 3, 40, RouterKind::Buffered);
        EXPECT_FALSE(b.m->restore(snap, b.sources, &err));
        EXPECT_NE(err.find("router backend"), std::string::npos)
            << err;
    }
    std::remove(snap.c_str());
}

} // namespace

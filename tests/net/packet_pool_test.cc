/** @file Unit tests for the packet pool and the handle FIFO. */

#include <vector>

#include <gtest/gtest.h>

#include "net/packet.hh"
#include "net/packet_pool.hh"

namespace
{

using gs::net::HandleQueue;
using gs::net::Packet;
using gs::net::PacketHandle;
using gs::net::PacketPool;

Packet
mkPkt(int src, int dst, int flits)
{
    Packet p;
    p.src = src;
    p.dst = dst;
    p.flits = flits;
    return p;
}

TEST(PacketPool, AcquireStoresACopy)
{
    PacketPool pool;
    Packet p = mkPkt(1, 2, 5);
    PacketHandle h = pool.acquire(p);
    p.flits = 99; // the pool owns an independent copy
    EXPECT_EQ(pool.get(h).src, 1);
    EXPECT_EQ(pool.get(h).dst, 2);
    EXPECT_EQ(pool.get(h).flits, 5);
    EXPECT_EQ(pool.inUse(), 1u);
    pool.release(h);
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(PacketPool, ReleasedSlotsRecycleLifo)
{
    PacketPool pool;
    PacketHandle a = pool.acquire(mkPkt(0, 1, 1));
    PacketHandle b = pool.acquire(mkPkt(0, 2, 1));
    EXPECT_EQ(pool.stats().allocated, 2u);
    EXPECT_EQ(pool.stats().reused, 0u);

    pool.release(a);
    pool.release(b);
    // LIFO: the most recently released slot comes back first.
    EXPECT_EQ(pool.acquire(mkPkt(0, 3, 1)), b);
    EXPECT_EQ(pool.acquire(mkPkt(0, 4, 1)), a);
    EXPECT_EQ(pool.stats().allocated, 2u);
    EXPECT_EQ(pool.stats().reused, 2u);
    EXPECT_EQ(pool.capacity(), 2u);
}

TEST(PacketPool, ReferencesStayValidAcrossGrowth)
{
    PacketPool pool;
    PacketHandle first = pool.acquire(mkPkt(7, 8, 9));
    const Packet &ref = pool.get(first);

    // Force lots of growth; a vector-backed slab would reallocate
    // and dangle `ref`, the deque must not.
    std::vector<PacketHandle> held;
    for (int i = 0; i < 4096; ++i)
        held.push_back(pool.acquire(mkPkt(i, i + 1, 1)));

    EXPECT_EQ(ref.src, 7);
    EXPECT_EQ(ref.dst, 8);
    EXPECT_EQ(ref.flits, 9);
    EXPECT_EQ(&ref, &pool.get(first));

    for (auto h : held)
        pool.release(h);
    pool.release(first);
    EXPECT_EQ(pool.inUse(), 0u);
    EXPECT_EQ(pool.stats().peakInUse, 4097u);
}

TEST(PacketPoolDeath, DoubleReleasePanics)
{
    PacketPool pool;
    PacketHandle h = pool.acquire(mkPkt(0, 1, 1));
    pool.release(h);
    EXPECT_DEATH(pool.release(h), "released twice");
}

TEST(HandleQueue, IsFifo)
{
    HandleQueue q;
    EXPECT_TRUE(q.empty());
    q.push(3);
    q.push(1);
    q.push(2);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.front(), 3u);
    q.pop();
    EXPECT_EQ(q.front(), 1u);
    q.pop();
    EXPECT_EQ(q.front(), 2u);
    q.pop();
    EXPECT_TRUE(q.empty());
}

TEST(HandleQueue, IterationSkipsConsumedPrefix)
{
    HandleQueue q;
    for (PacketHandle h = 0; h < 8; ++h)
        q.push(h);
    q.pop();
    q.pop();
    std::vector<PacketHandle> seen(q.begin(), q.end());
    EXPECT_EQ(seen, (std::vector<PacketHandle>{2, 3, 4, 5, 6, 7}));
}

TEST(HandleQueue, CompactionPreservesOrderUnderChurn)
{
    HandleQueue q;
    PacketHandle nextPush = 0;
    PacketHandle nextPop = 0;
    // Keep ~40 in flight through hundreds of push/pop cycles; the
    // head cursor repeatedly crosses the compaction threshold.
    for (int round = 0; round < 500; ++round) {
        for (int i = 0; i < 5; ++i)
            q.push(nextPush++);
        for (int i = 0; i < 4 && !q.empty(); ++i) {
            ASSERT_EQ(q.front(), nextPop);
            q.pop();
            nextPop += 1;
        }
    }
    while (!q.empty()) {
        ASSERT_EQ(q.front(), nextPop);
        q.pop();
        nextPop += 1;
    }
    EXPECT_EQ(nextPop, nextPush);
}

TEST(HandleQueue, ClearEmptiesEverything)
{
    HandleQueue q;
    for (PacketHandle h = 0; h < 100; ++h)
        q.push(h);
    for (int i = 0; i < 70; ++i)
        q.pop();
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    q.push(42);
    EXPECT_EQ(q.front(), 42u);
}

} // namespace

/** @file Cross-machine behavioural comparisons the paper's argument
 *  rests on: bandwidth scaling, load response, GUPS, shuffle. */

#include <gtest/gtest.h>

#include <memory>

#include "system/machine.hh"
#include "workload/gups.hh"
#include "workload/load_test.hh"
#include "workload/pointer_chase.hh"
#include "workload/stream.hh"

namespace
{

using namespace gs;
using namespace gs::sys;

double
triadGBs(Machine &m, int cpus)
{
    std::vector<std::unique_ptr<wl::StreamTriad>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        gens.push_back(std::make_unique<wl::StreamTriad>(
            m.cpuAddr(c, 0), 4 << 20));
        sources.push_back(gens.back().get());
    }
    Tick start = m.ctx().now();
    EXPECT_TRUE(m.run(sources, 2000 * tickMs));
    double ns = ticksToNs(m.ctx().now() - start);
    double lines = 0;
    for (auto &g : gens)
        lines += static_cast<double>(g->linesProcessed());
    return lines * 192.0 / ns;
}

TEST(Comparison, StreamScalesLinearlyOnGs1280Only)
{
    // Figure 7: 1->4 CPUs is ~4x on the GS1280 and much less on the
    // shared-memory ES45/GS320.
    auto g1 = Machine::buildGS1280(4);
    double gs1280One = triadGBs(*g1, 1);
    auto g4 = Machine::buildGS1280(4);
    double gs1280Four = triadGBs(*g4, 4);
    EXPECT_NEAR(gs1280Four / gs1280One, 4.0, 0.4);

    auto e1 = Machine::buildES45(4);
    double es45One = triadGBs(*e1, 1);
    auto e4 = Machine::buildES45(4);
    double es45Four = triadGBs(*e4, 4);
    EXPECT_LT(es45Four / es45One, 2.6);
}

TEST(Comparison, LoadTestLatencyRisesWithOutstanding)
{
    // Figure 15's x-y behaviour: more outstanding requests buy
    // bandwidth at some latency cost.
    auto measure = [](int mlp) {
        Gs1280Options opt;
        opt.mlp = mlp;
        auto m = Machine::buildGS1280(16, opt);
        std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < 16; ++c) {
            gens.push_back(std::make_unique<wl::RandomRemoteReads>(
                c, 16, 256 << 20, 1500,
                40 + static_cast<unsigned>(c)));
            sources.push_back(gens.back().get());
        }
        Tick start = m->ctx().now();
        EXPECT_TRUE(m->run(sources, 2000 * tickMs));
        double ns = ticksToNs(m->ctx().now() - start);
        double bytes = 16.0 * 1500.0 * 64.0;
        double bwMBs = bytes / ns * 1000.0;
        double lat = 0;
        for (int c = 0; c < 16; ++c)
            lat += m->node(c).stats().missLatencyNs.mean();
        return std::pair{bwMBs, lat / 16.0};
    };

    auto [bw1, lat1] = measure(1);
    auto [bw8, lat8] = measure(8);
    EXPECT_GT(bw8, 3.0 * bw1);   // bandwidth grows
    EXPECT_GT(lat8, lat1);       // latency rises under load
    EXPECT_LT(lat8, 6.0 * lat1); // but the fabric stays resilient
}

TEST(Comparison, GupsPrefersGs1280Strongly)
{
    // Figure 23 / Figure 28: GUPS is the paper's biggest win (>10x
    // vs GS320 at scale). At 8 CPUs expect a large factor.
    auto run = [](Machine &m, int cpus) {
        std::vector<std::unique_ptr<wl::Gups>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < cpus; ++c) {
            gens.push_back(std::make_unique<wl::Gups>(
                cpus, 64 << 20, 1200, 60 + static_cast<unsigned>(c)));
            sources.push_back(gens.back().get());
        }
        Tick start = m.ctx().now();
        EXPECT_TRUE(m.run(sources, 5000 * tickMs));
        double s = ticksToNs(m.ctx().now() - start) * 1e-9;
        return cpus * 1200.0 / s / 1e6; // Mupdates/s
    };

    auto gs1280 = Machine::buildGS1280(8);
    double mupsGs1280 = run(*gs1280, 8);
    auto gs320 = Machine::buildGS320(8);
    double mupsGs320 = run(*gs320, 8);
    EXPECT_GT(mupsGs1280, 4.0 * mupsGs320);
}

TEST(Comparison, GupsScalesWithCpuCount)
{
    auto run = [](int cpus) {
        auto m = Machine::buildGS1280(cpus);
        std::vector<std::unique_ptr<wl::Gups>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < cpus; ++c) {
            gens.push_back(std::make_unique<wl::Gups>(
                cpus, 64 << 20, 1000, 80 + static_cast<unsigned>(c)));
            sources.push_back(gens.back().get());
        }
        Tick start = m->ctx().now();
        EXPECT_TRUE(m->run(sources, 5000 * tickMs));
        double s = ticksToNs(m->ctx().now() - start) * 1e-9;
        return cpus * 1000.0 / s / 1e6;
    };
    double m4 = run(4);
    double m16 = run(16);
    EXPECT_GT(m16, 2.0 * m4);
}

TEST(Comparison, ShuffleImprovesLoadedLatencyOn8P)
{
    // Figure 18: 1-hop shuffle gains ~5-25% under load vs the torus.
    auto measure = [](bool shuffle) {
        Gs1280Options opt;
        opt.mlp = 8;
        opt.shuffle = shuffle;
        auto m = Machine::buildGS1280(8, opt);
        std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < 8; ++c) {
            gens.push_back(std::make_unique<wl::RandomRemoteReads>(
                c, 8, 256 << 20, 2500,
                90 + static_cast<unsigned>(c)));
            sources.push_back(gens.back().get());
        }
        Tick start = m->ctx().now();
        EXPECT_TRUE(m->run(sources, 2000 * tickMs));
        return ticksToNs(m->ctx().now() - start);
    };
    double torus = measure(false);
    double shuffle = measure(true);
    EXPECT_LT(shuffle, torus); // shuffle is faster
    EXPECT_GT(shuffle, 0.70 * torus); // but not implausibly so
}

TEST(Comparison, RemoteLatencyOrderingAcrossMachines)
{
    // Read-dirty/remote costs: GS1280 far below GS320 (Figure 12).
    auto chase = [](Machine &m, int to) {
        wl::PointerChase c(m.cpuAddr(to, 0), 8 << 20, 64, 2000);
        std::vector<cpu::TrafficSource *> s{&c};
        EXPECT_TRUE(m.run(s));
        return m.core(0).stats().elapsedNs() / 2000.0;
    };
    auto gs1280 = Machine::buildGS1280(16);
    auto gs320 = Machine::buildGS320(16);
    double remote1280 = chase(*gs1280, 10); // worst case, 4 hops
    double remote320 = chase(*gs320, 12);   // cross-QBB
    EXPECT_GT(remote320, 2.5 * remote1280);
}

} // namespace

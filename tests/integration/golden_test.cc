/**
 * @file
 * Golden-value regression tests: exact expected output committed
 * under tests/integration/golden/ for the pure-analytic benches
 * (Table 1 shuffle model, the Figure 14 latency model, the Figure 15
 * load-test model) plus one small fixed-seed simulation run. Any
 * drift in these numbers is a deliberate model change and must be
 * re-blessed by regenerating the files:
 *
 *     GS_UPDATE_GOLDEN=1 ./integration_test --gtest_filter='Golden*'
 *
 * then reviewing the diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analytic/latency_model.hh"
#include "analytic/loadtest_model.hh"
#include "analytic/shuffle_model.hh"
#include "sim/random.hh"
#include "sim/table.hh"
#include "system/machine.hh"
#include "topology/torus.hh"
#include "topology/torus3d.hh"
#include "workload/load_test.hh"

namespace
{

using namespace gs;

/**
 * Compare @p actual against the committed golden file, or rewrite
 * the file when GS_UPDATE_GOLDEN is set in the environment.
 */
void
checkGolden(const std::string &name, const std::string &actual)
{
    const std::string path = std::string(GS_GOLDEN_DIR) + "/" + name;
    if (std::getenv("GS_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (run with GS_UPDATE_GOLDEN=1 to create it)";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(actual, want.str())
        << "output of " << name << " drifted from its golden copy; "
        << "if the change is intentional, regenerate with "
        << "GS_UPDATE_GOLDEN=1 and review the diff";
}

// ---------------------------------------------------------------
// Table 1: shuffle-rewiring gains (pure graph model).
// ---------------------------------------------------------------

TEST(Golden, Table1ShuffleModel)
{
    std::ostringstream os;
    Table gains({"size", "aver. latency", "worst latency",
                 "bisection width"});
    Table abs({"size", "torus avg", "shuffle avg", "torus worst",
               "shuffle worst", "torus bisect", "shuffle bisect"});
    for (const auto &r : analytic::table1()) {
        const std::string size = std::to_string(r.width) + "x" +
                                 std::to_string(r.height);
        gains.addRow({size, Table::num(r.avgLatencyGain, 3),
                      Table::num(r.worstLatencyGain, 3),
                      Table::num(r.bisectionGain, 3)});
        abs.addRow({size, Table::num(r.torusAvg, 3),
                    Table::num(r.shuffleAvg, 3),
                    Table::num(r.torusWorst),
                    Table::num(r.shuffleWorst),
                    Table::num(r.torusBisection),
                    Table::num(r.shuffleBisection)});
    }
    gains.print(os);
    os << "\n";
    abs.print(os);
    checkGolden("table1_shuffle_model.txt", os.str());
}

// ---------------------------------------------------------------
// Figure 14 analytic layer: idle-latency scaling models.
// ---------------------------------------------------------------

TEST(Golden, LatencyModel)
{
    std::ostringstream os;
    Table t({"cpus", "torus", "GS1280 model ns", "GS320 model ns"});
    struct Shape
    {
        int w, h;
    };
    // The machine sizes of Figure 14 (GS320 capped at 32 CPUs).
    const std::vector<Shape> shapes = {{2, 2},  {4, 2},  {4, 4},
                                       {8, 4},  {8, 8},  {16, 8},
                                       {16, 16}};
    for (const auto &s : shapes) {
        const int cpus = s.w * s.h;
        topo::Torus2D torus(s.w, s.h);
        t.addRow({Table::num(cpus),
                  std::to_string(s.w) + "x" + std::to_string(s.h),
                  Table::num(
                      analytic::avgIdleLatencyNs(torus, 83.0, 44.0),
                      2),
                  cpus <= 32
                      ? Table::num(analytic::gs320AvgLatencyNs(
                                       cpus, 4, 330.0, 860.0),
                                   2)
                      : "-"});
    }
    t.print(os);

    os << "\n";
    Table q({"rho", "M/M/1 ns (service 100)"});
    for (double rho : {0.0, 0.25, 0.5, 0.75, 0.9, 0.95})
        q.addRow({Table::num(rho, 2),
                  Table::num(analytic::mm1LatencyNs(100.0, rho), 2)});
    q.print(os);
    checkGolden("latency_model.txt", os.str());
}

// ---------------------------------------------------------------
// Scale-out analytic layer: the bench/ext_scaling3d.cpp model table
// — 2-D vs 3-D torus at matched node counts (docs/SCALING.md). Pins
// the 3-D escape/adaptive routing's distance metric and the latency
// model on 6-port shapes up to 2048 nodes.
// ---------------------------------------------------------------

TEST(Golden, Scaling3DModel)
{
    std::ostringstream os;
    Table t({"nodes", "2D shape", "2D hops", "2D model ns",
             "3D shape", "3D hops", "3D model ns", "hop gain"});
    struct Shape3
    {
        int x, y, z;
    };
    const std::vector<Shape3> shapes = {
        {8, 8, 4}, {8, 8, 8}, {16, 8, 8}, {16, 16, 8}};
    auto avgHops = [](const topo::Topology &topo) {
        auto d = topo.distancesFrom(0);
        double sum = 0;
        for (int h : d)
            sum += h;
        return sum / static_cast<double>(d.size() - 1);
    };
    for (const auto &s : shapes) {
        const int nodes = s.x * s.y * s.z;
        auto [w, h] = sys::torusShape(nodes);
        topo::Torus2D t2(w, h);
        topo::Torus3D t3(s.x, s.y, s.z);
        const double h2 = avgHops(t2), h3 = avgHops(t3);
        t.addRow({Table::num(nodes),
                  std::to_string(w) + "x" + std::to_string(h),
                  Table::num(h2, 3),
                  Table::num(
                      analytic::avgIdleLatencyNs(t2, 83.0, 44.0), 2),
                  std::to_string(s.x) + "x" + std::to_string(s.y) +
                      "x" + std::to_string(s.z),
                  Table::num(h3, 3),
                  Table::num(
                      analytic::avgIdleLatencyNs(t3, 83.0, 44.0), 2),
                  Table::num(h2 / h3, 3)});
    }
    t.print(os);
    checkGolden("scaling3d_model.txt", os.str());
}

// ---------------------------------------------------------------
// Figure 15 analytic layer: load-test asymptotic bounds.
// ---------------------------------------------------------------

TEST(Golden, LoadtestModel)
{
    std::ostringstream os;
    analytic::LoadModelParams p; // the bench's defaults
    Table t({"outstanding/cpu", "bandwidth GB/s", "latency ns"});
    for (double w : {1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 30.0}) {
        auto pt = analytic::evaluateLoadPoint(p, w);
        t.addRow({Table::num(pt.outstanding, 1),
                  Table::num(pt.bandwidthGBs, 3),
                  Table::num(pt.latencyNs, 3)});
    }
    t.print(os);
    os << "\nsaturation knee: "
       << Table::num(analytic::saturationOutstanding(p), 4)
       << " outstanding/cpu\n";
    checkGolden("loadtest_model.txt", os.str());
}

// ---------------------------------------------------------------
// Fixed-seed simulation: a small GS1280 under the Figure 15 random
// remote-read generator. Exercises cores, caches, directory, torus
// routing and the stats pipeline end to end.
// ---------------------------------------------------------------

/** One fixed-seed run of the Figure 15 generator; returns the table
 *  text plus the event-kernel self-metrics of the run. */
struct SimRun
{
    std::string table;
    std::uint64_t fired;
    std::size_t peak;
};

SimRun
runFixedSeedSimulation()
{
    const std::uint64_t masterSeed = 1;
    const std::uint64_t reads = 400;
    auto m = sys::Machine::buildGS1280(8);

    std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < 8; ++c) {
        gens.push_back(std::make_unique<wl::RandomRemoteReads>(
            static_cast<NodeId>(c), 8, 8ULL << 20, reads,
            Rng::deriveSeed(masterSeed, static_cast<std::uint64_t>(c))));
        sources.push_back(gens.back().get());
    }
    EXPECT_TRUE(m->run(sources));

    std::ostringstream os;
    Table t({"cpu", "reads", "avg load-to-use ns"});
    for (int c = 0; c < 8; ++c) {
        const auto &st = m->core(c).stats();
        t.addRow({Table::num(c), Table::num(reads),
                  Table::num(st.elapsedNs() /
                                 static_cast<double>(reads),
                             3)});
    }
    t.print(os);
    return {os.str(), m->ctx().queue().firedCount(),
            m->ctx().queue().peakPending()};
}

TEST(Golden, FixedSeedSimulation)
{
    checkGolden("fixed_seed_simulation.txt",
                runFixedSeedSimulation().table);
}

// ---------------------------------------------------------------
// Router-backend ablation (bench/ablate_router.cpp in miniature):
// the same fixed-seed load test on both router backends. Pins the
// buffered numbers (which must not move under router refactors —
// the SoA rework shipped against this file) and the bufferless
// deflection behaviour (misroute counts, the escalation cap).
// ---------------------------------------------------------------

TEST(Golden, AblateRouterBackends)
{
    const std::uint64_t masterSeed = 1;
    const std::uint64_t reads = 200;
    std::ostringstream os;
    Table t({"backend", "mlp", "bandwidth MB/s", "latency ns",
             "deflects", "max/pkt", "retreats"});
    for (net::RouterKind kind :
         {net::RouterKind::Buffered, net::RouterKind::Bufferless}) {
        for (int mlp : {2, 8}) {
            sys::Gs1280Options opt;
            opt.mlp = mlp;
            opt.routerKind = kind;
            auto m = sys::Machine::buildGS1280(8, opt);

            std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
            std::vector<cpu::TrafficSource *> sources;
            for (int c = 0; c < 8; ++c) {
                gens.push_back(
                    std::make_unique<wl::RandomRemoteReads>(
                        static_cast<NodeId>(c), 8, 8ULL << 20, reads,
                        Rng::deriveSeed(
                            masterSeed,
                            static_cast<std::uint64_t>(c))));
                sources.push_back(gens.back().get());
            }
            Tick start = m->ctx().now();
            ASSERT_TRUE(m->run(sources, 20000 * tickMs));
            double ns = ticksToNs(m->ctx().now() - start);

            double bytes = 8.0 * static_cast<double>(reads) * 64.0;
            double lat = 0;
            for (int c = 0; c < 8; ++c)
                lat += m->node(c).stats().missLatencyNs.mean();

            const telem::Registry &reg = m->telemetry();
            auto count = [&reg](const char *path) {
                return Table::num(static_cast<std::uint64_t>(
                    reg.value(path)));
            };
            const bool bl = kind == net::RouterKind::Bufferless;
            t.addRow({net::routerKindName(kind), Table::num(mlp),
                      Table::num(bytes / ns * 1000.0, 3),
                      Table::num(lat / 8, 3),
                      bl ? count("net.deflect.count") : "-",
                      bl ? count("net.deflect.max_per_packet") : "-",
                      bl ? count("net.deflect.retreats") : "-"});
        }
    }
    t.print(os);
    checkGolden("ablate_router.txt", os.str());
}

// The golden file pins the output against history; this pins it
// against itself. Two runs in one process must agree byte for byte
// and fire the same event count — the event kernel's (when, seq)
// order contract leaves no room for iteration-order or
// address-dependent drift.
TEST(Golden, FixedSeedSimulationRepeatsExactly)
{
    SimRun a = runFixedSeedSimulation();
    SimRun b = runFixedSeedSimulation();
    EXPECT_EQ(a.table, b.table);
    EXPECT_EQ(a.fired, b.fired);
    EXPECT_EQ(a.peak, b.peak);
}

} // namespace

/** @file Coherence and behaviour across machine variants: GS320
 *  cross-QBB flows, striped GS1280, shuffled GS1280. */

#include <gtest/gtest.h>

#include <memory>

#include "coherence/checker.hh"
#include "system/machine.hh"
#include "workload/gups.hh"
#include "workload/pointer_chase.hh"

namespace
{

using namespace gs;
using namespace gs::sys;

std::vector<coher::CoherentNode *>
allNodes(Machine &m)
{
    std::vector<coher::CoherentNode *> v;
    for (NodeId n = 0; n < m.nodeCount(); ++n)
        if (m.hasNode(n))
            v.push_back(&m.node(n));
    return v;
}

void
access(Machine &m, int cpu, mem::Addr a, bool write)
{
    bool done = false;
    m.node(cpu).memAccess(a, write, [&] { done = true; });
    m.ctx().queue().runUntil(m.ctx().now() + 200 * tickUs);
    ASSERT_TRUE(done);
}

TEST(Gs320Coherence, CrossQbbReadDirty)
{
    auto m = Machine::buildGS320(16);
    mem::Addr a = m->cpuAddr(0, 0); // home: QBB switch of CPU 0

    access(*m, 0, a, true);   // CPU 0 dirties its local line
    access(*m, 12, a, false); // CPU 12 (remote QBB) reads it

    EXPECT_EQ(m->node(0).l2().state(a), mem::LineState::Shared);
    EXPECT_EQ(m->node(12).l2().state(a), mem::LineState::Shared);
    // The directory lives at CPU 0's QBB switch (node 16).
    EXPECT_EQ(m->node(16).dirState(a), coher::DirState::Shared);
    EXPECT_EQ(m->node(0).stats().forwardsServed, 1u);
    EXPECT_TRUE(coher::verifyCoherence(allNodes(*m)).ok);
}

TEST(Gs320Coherence, CrossQbbInvalidation)
{
    auto m = Machine::buildGS320(16);
    mem::Addr a = m->cpuAddr(5, 4096);
    for (NodeId reader : {0, 4, 8, 12})
        access(*m, reader, a, false);
    access(*m, 15, a, true);

    for (NodeId reader : {0, 4, 8, 12})
        EXPECT_EQ(m->node(reader).l2().state(a),
                  mem::LineState::Invalid);
    EXPECT_EQ(m->node(15).l2().state(a), mem::LineState::Modified);
    EXPECT_TRUE(coher::verifyCoherence(allNodes(*m)).ok);
}

TEST(Gs320Coherence, RandomSharingAcrossQbbs)
{
    auto m = Machine::buildGS320(16, /*seed=*/9);
    std::vector<std::unique_ptr<wl::Gups>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < 16; ++c) {
        gens.push_back(std::make_unique<wl::Gups>(
            16, 1 << 20, 200, 70 + static_cast<unsigned>(c)));
        sources.push_back(gens.back().get());
    }
    ASSERT_TRUE(m->run(sources, 30000 * tickMs));
    auto check = coher::verifyCoherence(allNodes(*m));
    EXPECT_TRUE(check.ok) << check.firstViolation;
}

TEST(StripedMachine, SharingOnStripedLinesStaysCoherent)
{
    Gs1280Options opt;
    opt.striped = true;
    auto m = Machine::buildGS1280(8, opt);

    // A striped region: lines alternate between CPU 0 and its buddy.
    mem::Addr base = m->cpuAddr(0, 0);
    for (int l = 0; l < 8; ++l) {
        access(*m, 3, base + static_cast<mem::Addr>(l) * 64, true);
        access(*m, 5, base + static_cast<mem::Addr>(l) * 64, false);
    }
    auto check = coher::verifyCoherence(allNodes(*m));
    EXPECT_TRUE(check.ok) << check.firstViolation;

    // Both pair members served home requests.
    NodeId buddy = m->moduleBuddy(0);
    EXPECT_GT(m->node(0).stats().homeRequests, 0u);
    EXPECT_GT(m->node(buddy).stats().homeRequests, 0u);
}

TEST(StripedMachine, LocalAccessesSplitAcrossThePair)
{
    Gs1280Options opt;
    opt.striped = true;
    auto m = Machine::buildGS1280(8, opt);

    wl::PointerChase chase(m->cpuAddr(0, 0), 4 << 20, 64, 4000);
    std::vector<cpu::TrafficSource *> sources{&chase};
    ASSERT_TRUE(m->run(sources));

    NodeId buddy = m->moduleBuddy(0);
    auto reads = [&](NodeId n) {
        return m->node(n).zbox(0).stats().reads +
               m->node(n).zbox(1).stats().reads;
    };
    EXPECT_NEAR(static_cast<double>(reads(0)),
                static_cast<double>(reads(buddy)),
                0.1 * static_cast<double>(reads(0)));
}

TEST(StripedMachine, AverageLatencySitsBetweenLocalAndOneHop)
{
    Gs1280Options opt;
    opt.striped = true;
    auto m = Machine::buildGS1280(8, opt);
    wl::PointerChase chase(m->cpuAddr(0, 0), 16 << 20, 64, 4000);
    std::vector<cpu::TrafficSource *> sources{&chase};
    ASSERT_TRUE(m->run(sources));
    double ns = m->core(0).stats().elapsedNs() / 4000.0;
    EXPECT_GT(ns, 90.0);  // above pure local (83)
    EXPECT_LT(ns, 145.0); // below pure one-hop (139+)
}

TEST(ShuffleMachine, CoherentUnderRandomTraffic)
{
    Gs1280Options opt;
    opt.shuffle = true;
    opt.shufflePolicy = topo::ShufflePolicy::TwoHop;
    auto m = Machine::buildGS1280(8, opt);

    std::vector<std::unique_ptr<wl::Gups>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < 8; ++c) {
        gens.push_back(std::make_unique<wl::Gups>(
            8, 1 << 20, 300, 30 + static_cast<unsigned>(c)));
        sources.push_back(gens.back().get());
    }
    ASSERT_TRUE(m->run(sources, 30000 * tickMs));
    auto check = coher::verifyCoherence(allNodes(*m));
    EXPECT_TRUE(check.ok) << check.firstViolation;
}

TEST(ShuffleMachine, WorstCaseLatencyBeatsTorus)
{
    // 4x2: the torus's 3-hop antipode becomes 1 shuffle hop.
    auto probe = [](bool shuffle) {
        Gs1280Options opt;
        opt.shuffle = shuffle;
        auto m = Machine::buildGS1280(8, opt);
        // Node 5 = (1,1): antipode of node 0 on the 4x2 torus... use
        // node 6 = (2,1), hop distance 3 on the torus, 1 shuffled.
        wl::PointerChase chase(m->cpuAddr(6, 0), 8 << 20, 64, 3000);
        std::vector<cpu::TrafficSource *> s{&chase};
        EXPECT_TRUE(m->run(s));
        return m->core(0).stats().elapsedNs() / 3000.0;
    };
    double torus = probe(false);
    double shuffled = probe(true);
    EXPECT_LT(shuffled, torus - 20.0); // two hops saved round-trip
}

} // namespace

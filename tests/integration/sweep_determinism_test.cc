/**
 * @file
 * The sweep engine's determinism contract, end to end: a figure-bench
 * style sweep over real simulations must render byte-identical stats
 * tables at --jobs 1 and --jobs 8. Each point builds its own machine
 * and draws randomness only from its counted stream, so neither the
 * thread count nor the scheduling order can leak into the numbers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/sweep.hh"
#include "sim/table.hh"
#include "system/machine.hh"
#include "workload/load_test.hh"
#include "workload/pointer_chase.hh"

namespace
{

using namespace gs;

/** Deterministic-workload sweep: dependent loads to each node of an
 *  8P GS1280, one fresh machine per point. */
std::string
latencySweep(int jobs)
{
    SweepRunner runner(jobs, /*masterSeed=*/1);
    std::vector<int> dsts = {0, 1, 2, 3, 4, 5, 6, 7};
    auto rows = runner.map(dsts, [](int dst, SweepPoint) {
        const std::uint64_t loads = 500;
        auto m = sys::Machine::buildGS1280(8);
        wl::PointerChase chase(m->cpuAddr(dst, 0), 8 << 20, 64,
                               loads);
        std::vector<cpu::TrafficSource *> sources(1, &chase);
        EXPECT_TRUE(m->run(sources));
        return m->core(0).stats().elapsedNs() /
               static_cast<double>(loads);
    });
    Table t({"dst", "ns"});
    for (std::size_t i = 0; i < rows.size(); ++i)
        t.addRow({Table::num(static_cast<int>(i)),
                  Table::num(rows[i], 3)});
    std::ostringstream os;
    t.print(os);
    return os.str();
}

/** Stochastic-workload sweep: every point seeds its generators from
 *  its own counted stream, the sharpest test of seed isolation. */
std::string
randomReadSweep(int jobs)
{
    SweepRunner runner(jobs, /*masterSeed=*/42);
    std::vector<int> cpuCounts = {2, 4, 8};
    auto rows =
        runner.map(cpuCounts, [](int cpus, SweepPoint sp) {
            const std::uint64_t reads = 300;
            auto m = sys::Machine::buildGS1280(cpus);
            std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
            std::vector<cpu::TrafficSource *> sources;
            for (int c = 0; c < cpus; ++c) {
                gens.push_back(
                    std::make_unique<wl::RandomRemoteReads>(
                        static_cast<NodeId>(c), cpus, 8ULL << 20,
                        reads,
                        Rng::deriveSeed(
                            sp.seed,
                            static_cast<std::uint64_t>(c))));
                sources.push_back(gens.back().get());
            }
            EXPECT_TRUE(m->run(sources));
            double worst = 0;
            for (int c = 0; c < cpus; ++c)
                worst = std::max(
                    worst, m->core(c).stats().elapsedNs());
            return worst / static_cast<double>(reads);
        });
    Table t({"cpus", "worst avg ns"});
    for (std::size_t i = 0; i < rows.size(); ++i)
        t.addRow({Table::num(cpuCounts[i]), Table::num(rows[i], 3)});
    std::ostringstream os;
    t.print(os);
    return os.str();
}

TEST(SweepDeterminism, DeterministicWorkloadTableBitIdentical)
{
    const std::string serial = latencySweep(1);
    const std::string parallel = latencySweep(8);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("dst"), std::string::npos);
}

TEST(SweepDeterminism, StochasticWorkloadTableBitIdentical)
{
    const std::string serial = randomReadSweep(1);
    const std::string parallel = randomReadSweep(8);
    EXPECT_EQ(serial, parallel);
}

TEST(SweepDeterminism, RepeatedParallelRunsAgree)
{
    // Scheduling noise across two parallel runs of the same sweep
    // must not show either.
    EXPECT_EQ(latencySweep(4), latencySweep(4));
}

} // namespace

/**
 * @file
 * Machine-wide telemetry determinism: identical seeds must produce
 * byte-identical exports — the property that makes --stats-out files
 * diffable across runs and machines, and that the sweep engine's
 * bit-identical-at-any-jobs contract extends to telemetry.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sweep.hh"
#include "sim/telemetry.hh"
#include "system/machine.hh"
#include "workload/gups.hh"

namespace
{

using namespace gs;

/**
 * One observed 8P GS1280 GUPS run: sampled link utilization, a
 * protocol trace, and the full JSON export, all concatenated so a
 * single string captures every export surface.
 */
std::string
observedRun(std::uint64_t seed)
{
    sys::Gs1280Options opt;
    opt.mlp = 16;
    opt.seed = seed;
    auto m = sys::Machine::buildGS1280(8, opt);

    telem::TraceWriter trace;
    m->attachTrace(trace);

    telem::Sampler sampler(m->ctx(), m->telemetry(), 2 * tickUs);
    double period = static_cast<double>(m->network().period());
    for (const auto &p : m->telemetry().paths("node.")) {
        if (p.find(".router.port.") != std::string::npos &&
            p.find(".vc.") == std::string::npos &&
            p.size() > 6 &&
            p.compare(p.size() - 6, 6, ".flits") == 0) {
            sampler.watchRate(p, period);
        }
    }
    sampler.mirrorToTrace(trace);
    sampler.start();

    std::vector<std::unique_ptr<wl::Gups>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < 8; ++c) {
        gens.push_back(std::make_unique<wl::Gups>(
            8, 16ULL << 20, 300,
            Rng::deriveSeed(seed, static_cast<std::uint64_t>(c))));
        sources.push_back(gens.back().get());
    }
    EXPECT_TRUE(m->run(sources, 5000 * tickMs));
    sampler.stop();

    std::ostringstream os;
    telem::exportJson(os, m->telemetry(), &sampler, m->ctx().now());
    telem::exportCsv(os, m->telemetry());
    trace.write(os);
    return os.str();
}

TEST(TelemetryDeterminism, IdenticalSeedsExportIdenticalBytes)
{
    std::string a = observedRun(11);
    std::string b = observedRun(11);
    EXPECT_EQ(a, b) << "telemetry export diverged between two "
                       "identically seeded runs";
    EXPECT_NE(a, observedRun(12))
        << "different seeds produced identical runs (suspicious)";
}

TEST(TelemetryDeterminism, SweepJobsDoNotPerturbExports)
{
    auto sweep = [](int jobs) {
        SweepRunner runner(jobs, 77);
        return runner.map(std::size_t(4), [](SweepPoint sp) {
            return observedRun(sp.seed);
        });
    };
    auto serial = sweep(1);
    auto parallel = sweep(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], parallel[i])
            << "point " << i
            << " export changed under --jobs 8";
    }
}

TEST(TelemetryDeterminism, ExportCarriesLinkSeries)
{
    // The export the benches write must actually contain per-node
    // per-port utilization series, non-empty and bounded.
    std::string out = observedRun(5);
    EXPECT_NE(out.find("\"node.0.router.port.E.flits\""),
              std::string::npos);
    EXPECT_NE(out.find("\"series\""), std::string::npos);
    EXPECT_NE(out.find("\"schema\":\"gs-telemetry-1\""),
              std::string::npos);
}

} // namespace

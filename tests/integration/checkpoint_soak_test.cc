/**
 * @file
 * Checkpoint soak (the fig23 GUPS scenario): a 32-CPU GUPS run that
 * checkpoints periodically must be continuable from EVERY snapshot
 * it wrote with byte-identical final exports, on the serial engine
 * and on the parallel engine at the acceptance thread count (8).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/telemetry.hh"
#include "system/machine.hh"
#include "workload/gups.hh"

namespace
{

using namespace gs;

struct Rig
{
    std::unique_ptr<sys::Machine> m;
    std::vector<std::unique_ptr<wl::Gups>> gens;
    std::vector<cpu::TrafficSource *> sources;
};

Rig
makeGupsRig(int cpus, int threads, std::uint64_t seed,
            std::uint64_t updates)
{
    Rig r;
    sys::Gs1280Options opt;
    opt.seed = seed;
    opt.threads = threads;
    r.m = sys::Machine::buildGS1280(cpus, opt);
    for (int c = 0; c < cpus; ++c) {
        r.gens.push_back(std::make_unique<wl::Gups>(
            cpus, 8ULL << 20, updates,
            Rng::deriveSeed(seed, static_cast<std::uint64_t>(c))));
        r.sources.push_back(r.gens.back().get());
    }
    return r;
}

std::string
exportOf(const sys::Machine &m)
{
    std::ostringstream os;
    telem::exportJson(os, m.telemetry());
    return os.str();
}

void
soak(int threads, const std::string &tag)
{
    const int cpus = 32;
    const std::uint64_t seed = 1;
    const std::uint64_t updates = 400;

    Rig probe = makeGupsRig(cpus, threads, seed, updates);
    ASSERT_TRUE(probe.m->run(probe.sources));
    const Tick every = probe.m->ctx().now() / 4;
    ASSERT_GT(every, 0u);

    const std::string prefixA =
        testing::TempDir() + "ckpt_soak_a_" + tag;
    Rig a = makeGupsRig(cpus, threads, seed, updates);
    a.m->setCheckpointPolicy(every, prefixA);
    ASSERT_TRUE(a.m->run(a.sources));
    const std::string want = exportOf(*a.m);
    const std::uint64_t snaps = a.m->checkpointSaves();
    ASSERT_GE(snaps, 3u);

    for (std::uint64_t k = 1; k <= snaps; ++k) {
        SCOPED_TRACE(tag + " snapshot " + std::to_string(k));
        const std::string prefixB = testing::TempDir() +
                                    "ckpt_soak_b_" + tag + "_" +
                                    std::to_string(k);
        Rig b = makeGupsRig(cpus, threads, seed, updates);
        b.m->setCheckpointPolicy(every, prefixB);
        std::string err;
        ASSERT_TRUE(b.m->restore(
            prefixA + "." + std::to_string(k) + ".gsckpt", b.sources,
            &err))
            << err;
        ASSERT_TRUE(b.m->run(b.sources));
        EXPECT_EQ(exportOf(*b.m), want)
            << "restore from snapshot " << k << " diverged";
        for (std::uint64_t n = 1; n <= b.m->checkpointSaves(); ++n)
            std::remove((prefixB + "." + std::to_string(n) + ".gsckpt")
                            .c_str());
    }
    for (std::uint64_t n = 1; n <= snaps; ++n)
        std::remove(
            (prefixA + "." + std::to_string(n) + ".gsckpt").c_str());
}

TEST(CheckpointSoak, GupsSerial)
{
    soak(1, "serial");
}

TEST(CheckpointSoak, GupsEightThreads)
{
    soak(8, "t8");
}

} // namespace

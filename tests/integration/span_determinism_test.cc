/**
 * @file
 * Latency x-ray determinism (docs/TRACING.md): the span sample set,
 * the per-stage attribution, and every span export must be
 * byte-identical between the serial engine and the parallel engine
 * at any worker count, and across a checkpoint save/restore
 * boundary. The sampled-observation layer must also leave the
 * simulation itself untouched.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/telemetry.hh"
#include "sim/trace_span.hh"
#include "system/machine.hh"
#include "workload/gups.hh"

namespace
{

using namespace gs;

struct Rig
{
    std::unique_ptr<sys::Machine> m;
    std::vector<std::unique_ptr<wl::Gups>> gens;
    std::vector<cpu::TrafficSource *> sources;
};

Rig
makeRig(int cpus, int threads, std::uint64_t seed, double rate,
        std::uint64_t updates = 300)
{
    Rig r;
    sys::Gs1280Options opt;
    opt.mlp = 16;
    opt.seed = seed;
    opt.threads = threads;
    // Pin the decomposition so serial and every parallel worker
    // count simulate the identical tile schedule (docs/PARALLEL.md).
    opt.tileRows = 1;
    opt.tileCols = 2;
    opt.spanSampleRate = rate;
    r.m = sys::Machine::buildGS1280(cpus, opt);
    for (int c = 0; c < cpus; ++c) {
        r.gens.push_back(std::make_unique<wl::Gups>(
            cpus, 16ULL << 20, updates,
            Rng::deriveSeed(seed, static_cast<std::uint64_t>(c))));
        r.sources.push_back(r.gens.back().get());
    }
    return r;
}

/**
 * Every span export surface in one string: the Chrome span trace
 * plus the xray.* registry rows (values printed at full precision).
 */
std::string
spanExportOf(sys::Machine &m)
{
    m.spans()->finalize();
    std::ostringstream os;
    telem::TraceWriter tw;
    m.spans()->exportTrace(tw);
    tw.write(os);
    const auto &reg = m.telemetry();
    os.precision(17);
    for (const auto &p : reg.paths("xray.")) {
        os << p << "=" << reg.value(p) << "\n";
        // Percentile views exist only on the histogram paths (the
        // sampled/completed counters have no pNN).
        if (p.size() > 3 &&
            p.compare(p.size() - 3, 3, "_ns") == 0) {
            os << p << ".p50=" << reg.value(p + ".p50") << "\n";
        }
    }
    return os.str();
}

TEST(SpanDeterminism, ThreadCountDoesNotPerturbSpanExports)
{
    Rig serial = makeRig(8, 1, 11, 0.2);
    ASSERT_TRUE(serial.m->run(serial.sources));
    const std::string want = spanExportOf(*serial.m);
    ASSERT_GT(serial.m->spans()->completedCount(), 0u)
        << "run completed no sampled spans; the test is vacuous";

    for (int threads : {2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        Rig par = makeRig(8, threads, 11, 0.2);
        ASSERT_TRUE(par.m->run(par.sources));
        EXPECT_EQ(spanExportOf(*par.m), want)
            << "span export changed under --threads "
            << threads;
    }
}

TEST(SpanDeterminism, SamplingDoesNotPerturbTheSimulation)
{
    // The x-ray is an observer: a traced run and an untraced run
    // must execute the identical simulation. Compare a non-span
    // export surface across rates 0 / 0.5 / 1.
    auto coreNs = [](double rate) {
        Rig r = makeRig(8, 1, 5, rate);
        EXPECT_TRUE(r.m->run(r.sources));
        std::ostringstream os;
        os.precision(17);
        for (int c = 0; c < 8; ++c)
            os << r.m->core(c).stats().elapsedNs() << "\n";
        os << r.m->ctx().now();
        return os.str();
    };
    const std::string off = coreNs(0.0);
    EXPECT_EQ(coreNs(0.5), off);
    EXPECT_EQ(coreNs(1.0), off);
}

TEST(SpanDeterminism, DifferentSeedsSampleDifferentSpans)
{
    Rig a = makeRig(8, 1, 21, 0.2);
    Rig b = makeRig(8, 1, 22, 0.2);
    ASSERT_TRUE(a.m->run(a.sources));
    ASSERT_TRUE(b.m->run(b.sources));
    EXPECT_NE(spanExportOf(*a.m), spanExportOf(*b.m))
        << "independent seeds produced identical span exports "
           "(sampling is ignoring the seed)";
}

TEST(SpanDeterminism, SurvivesCheckpointRestore)
{
    const std::uint64_t seed = 9;
    const double rate = 0.3;

    // Unbroken reference run.
    Rig probe = makeRig(8, 1, seed, rate);
    ASSERT_TRUE(probe.m->run(probe.sources));
    const Tick every = probe.m->ctx().now() / 3;
    ASSERT_GT(every, 0u);

    const std::string prefix = testing::TempDir() + "span_ckpt";
    Rig a = makeRig(8, 1, seed, rate);
    a.m->setCheckpointPolicy(every, prefix);
    ASSERT_TRUE(a.m->run(a.sources));
    const std::string want = spanExportOf(*a.m);
    const std::uint64_t snaps = a.m->checkpointSaves();
    ASSERT_GE(snaps, 2u);

    // Resume from a mid-run snapshot: in-flight spans ride the
    // packet/MAF serialization, the collector lanes ride its client
    // section, so the final export must not notice the break.
    const std::uint64_t k = snaps / 2 + 1;
    Rig b = makeRig(8, 1, seed, rate);
    std::string err;
    ASSERT_TRUE(b.m->restore(prefix + "." + std::to_string(k) +
                                 ".gsckpt",
                             b.sources, &err))
        << err;
    ASSERT_TRUE(b.m->run(b.sources));
    EXPECT_EQ(spanExportOf(*b.m), want)
        << "span export diverged across the restore boundary";

    for (std::uint64_t n = 1; n <= snaps; ++n)
        std::remove(
            (prefix + "." + std::to_string(n) + ".gsckpt").c_str());
}

} // namespace

/** @file Section 6 striping: hot-spot relief vs throughput cost. */

#include <gtest/gtest.h>

#include <memory>

#include "system/machine.hh"
#include "workload/load_test.hh"
#include "workload/stream.hh"

namespace
{

using namespace gs;
using namespace gs::sys;

double
hotSpotRunNs(bool striped, int cpus, int reads)
{
    Gs1280Options opt;
    opt.striped = striped;
    opt.mlp = 8;
    auto m = Machine::buildGS1280(cpus, opt);

    std::vector<std::unique_ptr<wl::HotSpotReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        gens.push_back(std::make_unique<wl::HotSpotReads>(
            0, 256 << 20, static_cast<std::uint64_t>(reads),
            100 + static_cast<unsigned>(c)));
        sources.push_back(gens.back().get());
    }
    Tick start = m->ctx().now();
    EXPECT_TRUE(m->run(sources, 5000 * tickMs));
    return ticksToNs(m->ctx().now() - start);
}

TEST(Striping, RelievesHotSpots)
{
    // Figure 26: striping improves hot-spot throughput (up to 80%).
    double plain = hotSpotRunNs(false, 16, 1200);
    double striped = hotSpotRunNs(true, 16, 1200);
    EXPECT_LT(striped, 0.85 * plain);
    EXPECT_GT(striped, 0.40 * plain);
}

TEST(Striping, SpreadsTheLoadOverTheBuddy)
{
    Gs1280Options opt;
    opt.striped = true;
    auto m = Machine::buildGS1280(8, opt);
    std::vector<std::unique_ptr<wl::HotSpotReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < 8; ++c) {
        gens.push_back(std::make_unique<wl::HotSpotReads>(
            0, 64 << 20, 1000, 7 + static_cast<unsigned>(c)));
        sources.push_back(gens.back().get());
    }
    EXPECT_TRUE(m->run(sources, 5000 * tickMs));

    NodeId buddy = m->moduleBuddy(0);
    auto reads = [&](NodeId n) {
        return m->node(n).zbox(0).stats().reads +
               m->node(n).zbox(1).stats().reads;
    };
    // Both members of the module pair serve about half the reads.
    EXPECT_GT(reads(buddy), reads(0) / 2);
    // Any third node serves (almost) nothing.
    for (NodeId n = 0; n < 8; ++n) {
        if (n == 0 || n == buddy)
            continue;
        EXPECT_LT(reads(n), reads(0) / 8) << "node " << n;
    }
}

TEST(Striping, HurtsLocalStreamThroughput)
{
    // Figure 25: throughput (rate-style local streaming) degrades
    // under striping because half the lines turn remote.
    auto run = [](bool striped) {
        Gs1280Options opt;
        opt.striped = striped;
        auto m = Machine::buildGS1280(8, opt);
        std::vector<std::unique_ptr<wl::StreamTriad>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < 8; ++c) {
            gens.push_back(std::make_unique<wl::StreamTriad>(
                m->cpuAddr(c, 0), 2 << 20));
            sources.push_back(gens.back().get());
        }
        Tick start = m->ctx().now();
        EXPECT_TRUE(m->run(sources, 5000 * tickMs));
        return ticksToNs(m->ctx().now() - start);
    };
    double plain = run(false);
    double striped = run(true);
    EXPECT_GT(striped, 1.04 * plain); // measurably slower
    EXPECT_LT(striped, 1.80 * plain); // within the paper's band
}

TEST(Striping, CoherenceSurvivesStripedSharing)
{
    Gs1280Options opt;
    opt.striped = true;
    auto m = Machine::buildGS1280(4, opt);
    // All CPUs hammer the same small striped region.
    std::vector<std::unique_ptr<wl::HotSpotReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < 4; ++c) {
        gens.push_back(std::make_unique<wl::HotSpotReads>(
            0, 1 << 16, 500, 3 + static_cast<unsigned>(c)));
        sources.push_back(gens.back().get());
    }
    EXPECT_TRUE(m->run(sources, 5000 * tickMs));
    EXPECT_TRUE(m->drained());
}

} // namespace

/**
 * @file
 * Serial-vs-parallel A/B equivalence for the conservative parallel
 * engine (docs/PARALLEL.md). The contract under test:
 *
 *  - the same machine runs bit-identically at any --threads value
 *    (thread-count invariance, including every fired-event count and
 *    floating-point statistic, since the domain decomposition and
 *    merge order never depend on the worker count);
 *  - against the serial engine, every per-node message sequence,
 *    every integer statistic and every per-core timing is identical
 *    across seeds (the merged schedule reproduces serial order);
 *  - the committed fixed-seed golden file passes unchanged when the
 *    producing machine runs parallel.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "sim/random.hh"
#include "sim/table.hh"
#include "system/machine.hh"
#include "workload/load_test.hh"

namespace
{

using namespace gs;

/** One observed message at a node: (incoming, src, dst, cls, injected). */
using MsgRec = std::tuple<bool, NodeId, NodeId, int, Tick>;

struct RunResult
{
    bool completed = false;
    std::vector<double> coreElapsedNs; ///< exact tick-derived values
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t deliveredFlits = 0;
    std::uint64_t latCount = 0;
    double latMin = 0, latMax = 0, latMean = 0;
    std::uint64_t firedEvents = 0;
    std::uint64_t epochs = 0;
    /** Per-node message logs: the event-order witness. */
    std::vector<std::vector<MsgRec>> msgs;
};

/** Workloads the A/B matrix drives (uniform vs one-hot-tile). */
enum class Load
{
    RandomRemote,
    HotSpot,
};

RunResult
runGs1280(int cpus, int threads, std::uint64_t seed,
          std::uint64_t reads, TileShape tiles = {0, 0},
          Load load = Load::RandomRemote)
{
    sys::Gs1280Options opt;
    opt.seed = seed;
    opt.threads = threads;
    opt.tileRows = tiles.rows;
    opt.tileCols = tiles.cols;
    auto m = sys::Machine::buildGS1280(cpus, opt);

    RunResult r;
    r.msgs.resize(static_cast<std::size_t>(cpus));
    for (int n = 0; n < cpus; ++n) {
        auto *log = &r.msgs[std::size_t(n)];
        m->node(n).setMsgObserver(
            [log](const net::Packet &pkt, bool incoming) {
                log->push_back({incoming, pkt.src, pkt.dst,
                                static_cast<int>(pkt.cls),
                                pkt.injected});
            });
    }

    std::vector<std::unique_ptr<cpu::TrafficSource>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        const std::uint64_t s =
            Rng::deriveSeed(seed, static_cast<std::uint64_t>(c));
        if (load == Load::HotSpot) {
            // Every CPU hammers node 0's memory: all the simulated
            // work concentrates in the tile owning node 0, which is
            // exactly the imbalance the work-stealing loop exists
            // for.
            gens.push_back(std::make_unique<wl::HotSpotReads>(
                NodeId(0), 8ULL << 20, reads, s));
        } else {
            gens.push_back(std::make_unique<wl::RandomRemoteReads>(
                static_cast<NodeId>(c), cpus, 8ULL << 20, reads, s));
        }
        sources.push_back(gens.back().get());
    }
    r.completed = m->run(sources);

    for (int c = 0; c < cpus; ++c)
        r.coreElapsedNs.push_back(m->core(c).stats().elapsedNs());
    const auto &st = m->network().stats();
    r.injected = st.injectedPackets;
    r.delivered = st.deliveredPackets;
    r.deliveredFlits = st.deliveredFlits;
    r.latCount = st.latencyNs.count();
    r.latMin = st.latencyNs.min();
    r.latMax = st.latencyNs.max();
    r.latMean = st.latencyNs.mean();
    r.firedEvents = static_cast<std::uint64_t>(
        m->telemetry().value("eq.fired"));
    if (m->isParallel())
        r.epochs = m->parallel()->epochs();
    return r;
}

/**
 * Everything that must match bit-for-bit between two parallel runs
 * of different worker counts, or between serial and parallel except
 * for the members excluded below.
 */
void
expectIdentical(const RunResult &a, const RunResult &b,
                bool same_engine)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.coreElapsedNs, b.coreElapsedNs); // exact doubles
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.deliveredFlits, b.deliveredFlits);
    EXPECT_EQ(a.latCount, b.latCount);
    EXPECT_EQ(a.latMin, b.latMin);
    EXPECT_EQ(a.latMax, b.latMax);
    EXPECT_EQ(a.msgs, b.msgs);
    if (same_engine) {
        // Same engine, different worker count: even the event count
        // and the shard-order latency sum are bitwise equal.
        EXPECT_EQ(a.latMean, b.latMean);
        EXPECT_EQ(a.firedEvents, b.firedEvents);
        EXPECT_EQ(a.epochs, b.epochs);
    } else {
        // Serial vs parallel: the mean sums the same samples in a
        // different association (per-shard subtotals), so allow the
        // summation-reorder ulps; the tick bookkeeping differs (one
        // global tick chain vs one per domain), so event counts are
        // engine-specific.
        EXPECT_NEAR(a.latMean, b.latMean,
                    1e-9 * (std::abs(a.latMean) + 1.0));
    }
}

TEST(ParallelAB, SerialVsParallelAcrossSeeds)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        RunResult serial = runGs1280(16, 1, seed, 120);
        RunResult par = runGs1280(16, 2, seed, 120);
        ASSERT_TRUE(serial.completed);
        expectIdentical(serial, par, /*same_engine=*/false);
    }
}

TEST(ParallelAB, ThreadCountInvariance)
{
    // 16 CPUs = 4x4 torus, decomposition pinned at 2x2 (the auto
    // shape tracks --threads, so cross-thread-count comparisons pin
    // one); 8 threads exercises the clamp to 4 domains. All parallel
    // runs must agree bit-for-bit on everything, floating point
    // included.
    RunResult t2 = runGs1280(16, 2, 7, 150, {2, 2});
    RunResult t4 = runGs1280(16, 4, 7, 150, {2, 2});
    RunResult t8 = runGs1280(16, 8, 7, 150, {2, 2});
    ASSERT_TRUE(t2.completed);
    EXPECT_GT(t2.epochs, 0u);
    expectIdentical(t2, t4, /*same_engine=*/true);
    expectIdentical(t2, t8, /*same_engine=*/true);
}

TEST(ParallelAB, RandomizedStressMatrix)
{
    // The determinism stress lane: ~50 sampled (machine shape, tile
    // shape, thread count, workload, seed) combinations, each
    // asserting the full witness — message logs, core timings,
    // network statistics — against a serial run of the same
    // workload. Sampling is seeded, so a failure reproduces.
    struct Torus
    {
        int cpus;
        int w, h;
        std::uint64_t reads;
    };
    const Torus tori[] = {
        {8, 4, 2, 70},
        {16, 4, 4, 60},
        {32, 8, 4, 40},
    };
    const Load loads[] = {Load::RandomRemote, Load::HotSpot};
    const int threadChoices[] = {2, 3, 4, 8};

    Rng pick(0xab5712);
    int combos = 0;
    for (const Torus &t : tori) {
        for (Load load : loads) {
            const std::uint64_t seed = 10 + pick.below(90);
            RunResult serial = runGs1280(t.cpus, 1, seed, t.reads,
                                         {0, 0}, load);
            ASSERT_TRUE(serial.completed);
            // Eight sampled (tile shape, threads) variants per
            // serial reference; every legal shape divides the torus
            // into whole-row/column blocks, so sample rows | cols
            // factors directly.
            for (int v = 0; v < 8; ++v) {
                const int rows =
                    1 + static_cast<int>(pick.below(
                            static_cast<std::uint64_t>(t.h)));
                const int cols =
                    1 + static_cast<int>(pick.below(
                            static_cast<std::uint64_t>(t.w)));
                if (rows * cols < 2)
                    continue; // 1x1 is the serial engine
                const int threads =
                    threadChoices[pick.below(4)];
                SCOPED_TRACE("cpus=" + std::to_string(t.cpus) +
                             " load=" +
                             (load == Load::HotSpot ? "hot" : "rand") +
                             " seed=" + std::to_string(seed) +
                             " tiles=" + std::to_string(rows) + "x" +
                             std::to_string(cols) +
                             " threads=" + std::to_string(threads));
                RunResult par =
                    runGs1280(t.cpus, threads, seed, t.reads,
                              {rows, cols}, load);
                expectIdentical(serial, par, /*same_engine=*/false);
                combos += 1;
            }
        }
    }
    // Each sampled variant plus its serial reference is a compared
    // pair; the lane is meant to stay ~50 runs strong.
    EXPECT_GE(combos, 40);
}

TEST(ParallelAB, WorkStealingTortureOnHotTile)
{
    // Every CPU of the 8x4 torus hammers node 0: the 2x2 tiling puts
    // all the load in tile 0 while three tiles idle — the case the
    // steal scan converts from three spinning workers into helpers.
    // Correctness first: the torture run must still be bit-identical
    // to serial.
    RunResult serial =
        runGs1280(32, 1, 13, 80, {0, 0}, Load::HotSpot);
    RunResult par =
        runGs1280(32, 4, 13, 80, {2, 2}, Load::HotSpot);
    ASSERT_TRUE(serial.completed);
    expectIdentical(serial, par, /*same_engine=*/false);

    // And at any other thread count / shape, bit-identical to the
    // first parallel run given the same pinned shape.
    RunResult par8 =
        runGs1280(32, 8, 13, 80, {2, 2}, Load::HotSpot);
    expectIdentical(par, par8, /*same_engine=*/true);
}

TEST(ParallelAB, SixtyFourNodeTorusSerialVsEightThreads)
{
    // The 8x8 torus (8 domains) at the acceptance thread count.
    RunResult serial = runGs1280(64, 1, 5, 40);
    RunResult par = runGs1280(64, 8, 5, 40);
    ASSERT_TRUE(serial.completed);
    expectIdentical(serial, par, /*same_engine=*/false);
}

// The committed golden (produced by the serial engine, see
// golden_test.cc) must pass unchanged when the same machine runs on
// the parallel engine at any thread count.
TEST(ParallelAB, FixedSeedGoldenStableAcrossThreadCounts)
{
    const std::string path =
        std::string(GS_GOLDEN_DIR) + "/fixed_seed_simulation.txt";
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path;
    std::stringstream want;
    want << in.rdbuf();

    for (int threads : {2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const std::uint64_t masterSeed = 1;
        const std::uint64_t reads = 400;
        sys::Gs1280Options opt;
        opt.seed = masterSeed;
        opt.threads = threads;
        auto m = sys::Machine::buildGS1280(8, opt);

        std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < 8; ++c) {
            gens.push_back(std::make_unique<wl::RandomRemoteReads>(
                static_cast<NodeId>(c), 8, 8ULL << 20, reads,
                Rng::deriveSeed(masterSeed,
                                static_cast<std::uint64_t>(c))));
            sources.push_back(gens.back().get());
        }
        EXPECT_TRUE(m->run(sources));

        std::ostringstream os;
        Table t({"cpu", "reads", "avg load-to-use ns"});
        for (int c = 0; c < 8; ++c) {
            const auto &st = m->core(c).stats();
            t.addRow({Table::num(c), Table::num(reads),
                      Table::num(st.elapsedNs() /
                                     static_cast<double>(reads),
                                 3)});
        }
        t.print(os);
        EXPECT_EQ(os.str(), want.str())
            << "parallel run diverged from the serial golden";
    }
}

} // namespace

/** @file End-to-end calibration: the simulator must land on the
 *  paper's headline latency/bandwidth numbers (Figures 4, 5, 7, 13)
 *  within shape-preserving tolerances. */

#include <gtest/gtest.h>

#include <memory>

#include "system/machine.hh"
#include "workload/pointer_chase.hh"
#include "workload/stream.hh"

namespace
{

using namespace gs;
using namespace gs::sys;

double
chaseNs(Machine &m, int from, int to, std::uint64_t dataset,
        std::uint64_t stride, std::uint64_t loads,
        std::uint64_t offset = 0)
{
    wl::PointerChase chase(m.cpuAddr(to, offset), dataset, stride,
                           loads);
    std::vector<cpu::TrafficSource *> sources(
        static_cast<std::size_t>(from) + 1, nullptr);
    sources[static_cast<std::size_t>(from)] = &chase;
    EXPECT_TRUE(m.run(sources));
    return m.core(from).stats().elapsedNs() /
           static_cast<double>(loads);
}

TEST(Calibration, Gs1280LocalLatencyNear83ns)
{
    auto m = Machine::buildGS1280(16);
    double ns = chaseNs(*m, 0, 0, 32 << 20, 64, 6000);
    EXPECT_NEAR(ns, 83.0, 8.0);
}

TEST(Calibration, Gs1280ClosedPageLatencyNear130ns)
{
    // Figure 5: latency rises to ~130 ns for large-stride access.
    auto m = Machine::buildGS1280(16);
    double ns = chaseNs(*m, 0, 0, 64 << 20, 16384, 4000);
    EXPECT_NEAR(ns, 130.0, 15.0);
}

TEST(Calibration, Gs1280OneHopLatencyNearFigure13)
{
    auto m = Machine::buildGS1280(16);
    // On-module neighbour (node 4 = (0,1)): 139 ns in the paper.
    double onModule = chaseNs(*m, 0, 4, 16 << 20, 64, 5000);
    EXPECT_NEAR(onModule, 139.0, 12.0);
    // Backplane East neighbour (node 1): 145 ns.
    double backplane = chaseNs(*m, 0, 1, 16 << 20, 64, 5000);
    EXPECT_NEAR(backplane, 145.0, 12.0);
    EXPECT_LT(onModule, backplane);
}

TEST(Calibration, Gs1280WorstCase16PNear259ns)
{
    auto m = Machine::buildGS1280(16);
    // (2,2) = node 10 is 4 hops from node 0 in a 4x4 torus.
    double ns = chaseNs(*m, 0, 10, 16 << 20, 64, 5000);
    EXPECT_NEAR(ns, 259.0, 25.0);
}

TEST(Calibration, CacheHitLatenciesOrdered)
{
    // Figure 4's regions: L1 ~2-3 ns, on-chip L2 ~10 ns, memory
    // ~83 ns on the GS1280.
    auto m = Machine::buildGS1280(4);
    double l1 = chaseNs(*m, 0, 0, 16 << 10, 64, 20000);
    EXPECT_LT(l1, 6.0);
    // Warm the L2 once so the 512 KB chase measures pure hits.
    chaseNs(*m, 0, 0, 512 << 10, 64, 8192, 1ULL << 30);
    double l2 = chaseNs(*m, 0, 0, 512 << 10, 64, 20000, 1ULL << 30);
    EXPECT_NEAR(l2, 10.4, 4.0);
    // Fresh (cold) region for the memory measurement.
    double mem = chaseNs(*m, 0, 0, 32 << 20, 64, 5000, 2ULL << 30);
    EXPECT_GT(mem, 5.0 * l2);
}

TEST(Calibration, Gs320LocalLatencyNear330ns)
{
    auto m = Machine::buildGS320(16);
    double ns = chaseNs(*m, 0, 0, 64 << 20, 64, 3000);
    EXPECT_NEAR(ns, 330.0, 45.0);
}

TEST(Calibration, Gs320RemoteLatencyNear860ns)
{
    auto m = Machine::buildGS320(16);
    double ns = chaseNs(*m, 0, 12, 64 << 20, 64, 2000);
    EXPECT_NEAR(ns, 860.0, 120.0);
}

TEST(Calibration, Es45MemoryLatencyNear195ns)
{
    auto m = Machine::buildES45(4);
    double ns = chaseNs(*m, 0, 0, 64 << 20, 64, 3000);
    EXPECT_NEAR(ns, 195.0, 30.0);
}

TEST(Calibration, LatencyAdvantageRatioNear3p8)
{
    // Figure 4 at 32 MB: GS1280 is ~3.8x faster than the GS320.
    auto gs1280 = Machine::buildGS1280(4);
    auto gs320 = Machine::buildGS320(4);
    double a = chaseNs(*gs1280, 0, 0, 32 << 20, 64, 4000);
    double b = chaseNs(*gs320, 0, 0, 32 << 20, 64, 2000);
    EXPECT_NEAR(b / a, 3.8, 0.9);
}

TEST(Calibration, MidRangeDatasetFavorsBigCache)
{
    // Figure 4, 1.75 MB..16 MB: the 16 MB off-chip caches win once
    // the set is resident (warm with a full pass, then measure).
    auto gs1280 = Machine::buildGS1280(4);
    auto es45 = Machine::buildES45(4);
    std::uint64_t lines = (8 << 20) / 64;
    chaseNs(*gs1280, 0, 0, 8 << 20, 64, lines);
    chaseNs(*es45, 0, 0, 8 << 20, 64, lines);
    double a = chaseNs(*gs1280, 0, 0, 8 << 20, 64, 4000);
    double b = chaseNs(*es45, 0, 0, 8 << 20, 64, 4000);
    EXPECT_GT(a, b);
}

TEST(Calibration, SmallDatasetFavorsOnChipCache)
{
    // Figure 4, 64 KB..1.75 MB: the on-chip L2 is much faster.
    auto gs1280 = Machine::buildGS1280(4);
    auto gs320 = Machine::buildGS320(4);
    double a = chaseNs(*gs1280, 0, 0, 1 << 20, 64, 20000);
    double b = chaseNs(*gs320, 0, 0, 1 << 20, 64, 20000);
    EXPECT_LT(2.0 * a, b);
}

TEST(Calibration, StreamTriadNearPublished)
{
    // ~4-5 GB/s per GS1280 CPU; ES45 ~1.5-2; GS320 ~0.8-1.3.
    auto gs1280 = Machine::buildGS1280(4);
    wl::StreamTriad t1(gs1280->cpuAddr(0, 0), 8 << 20);
    ASSERT_TRUE(gs1280->run({&t1}));
    double gbs = static_cast<double>(t1.linesProcessed()) * 192.0 /
                 gs1280->core(0).stats().elapsedNs();
    EXPECT_GT(gbs, 3.0);
    EXPECT_LT(gbs, 6.5);

    auto es45 = Machine::buildES45(4);
    wl::StreamTriad t2(es45->cpuAddr(0, 0), 8 << 20);
    ASSERT_TRUE(es45->run({&t2}));
    double es45Gbs = static_cast<double>(t2.linesProcessed()) *
                     192.0 / es45->core(0).stats().elapsedNs();
    EXPECT_GT(gbs, 1.7 * es45Gbs);
}

} // namespace

/** @file Torus topology tests, including parameterized properties
 *  over the shapes the GS1280 shipped in. */

#include <gtest/gtest.h>

#include "topology/torus.hh"

namespace
{

using namespace gs;
using namespace gs::topo;

TEST(Torus, GeometryMapping)
{
    Torus2D t(4, 4);
    EXPECT_EQ(t.numNodes(), 16);
    EXPECT_EQ(t.nodeAt(1, 2), 9);
    EXPECT_EQ(t.xOf(9), 1);
    EXPECT_EQ(t.yOf(9), 2);
}

TEST(Torus, NeighboursWrap)
{
    Torus2D t(4, 4);
    // Node (0,0): East->(1,0), West->(3,0), North->(0,1), South->(0,3)
    EXPECT_EQ(t.port(0, portEast).peer, t.nodeAt(1, 0));
    EXPECT_EQ(t.port(0, portWest).peer, t.nodeAt(3, 0));
    EXPECT_EQ(t.port(0, portNorth).peer, t.nodeAt(0, 1));
    EXPECT_EQ(t.port(0, portSouth).peer, t.nodeAt(0, 3));
}

TEST(Torus, PortPairingIsConsistent)
{
    Torus2D t(4, 3);
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        for (int p = 0; p < t.numPorts(n); ++p) {
            Port fwd = t.port(n, p);
            if (!fwd.connected())
                continue;
            Port back = t.port(fwd.peer, fwd.peerPort);
            EXPECT_EQ(back.peer, n) << "node " << n << " port " << p;
            EXPECT_EQ(back.peerPort, p);
        }
    }
}

TEST(Torus, DegenerateDimensions)
{
    Torus2D line(4, 1);
    EXPECT_FALSE(line.port(0, portNorth).connected());
    EXPECT_FALSE(line.port(0, portSouth).connected());
    EXPECT_TRUE(line.port(0, portEast).connected());

    Torus2D single(1, 1);
    for (int p = 0; p < torusPorts; ++p)
        EXPECT_FALSE(single.port(0, p).connected());
}

TEST(Torus, TwoWideHasRedundantParallelLinks)
{
    Torus2D t(4, 2);
    NodeId n = t.nodeAt(1, 0);
    // North and South both reach (1,1) over distinct links.
    EXPECT_EQ(t.port(n, portNorth).peer, t.nodeAt(1, 1));
    EXPECT_EQ(t.port(n, portSouth).peer, t.nodeAt(1, 1));
}

TEST(Torus, OnModuleLinkKinds)
{
    Torus2D t(4, 4);
    // Row pairs (0,1) and (2,3) are modules: North from row 0 is
    // on-module, North from row 1 is a cable.
    EXPECT_EQ(t.port(t.nodeAt(0, 0), portNorth).kind,
              LinkKind::OnModule);
    EXPECT_EQ(t.port(t.nodeAt(0, 1), portNorth).kind, LinkKind::Cable);
    EXPECT_EQ(t.port(t.nodeAt(0, 1), portSouth).kind,
              LinkKind::OnModule);
}

TEST(Torus, AdaptivePortsAreMinimal)
{
    Torus2D t(4, 4);
    // (0,0) -> (2,2): both X directions tie (distance 2 each way),
    // both Y directions tie.
    auto ports = t.adaptivePorts(t.nodeAt(0, 0), t.nodeAt(2, 2), 0);
    EXPECT_EQ(ports.size(), 4u);

    // (0,0) -> (1,0): East only.
    ports = t.adaptivePorts(t.nodeAt(0, 0), t.nodeAt(1, 0), 0);
    ASSERT_EQ(ports.size(), 1u);
    EXPECT_EQ(ports[0], portEast);

    // At destination: none.
    EXPECT_TRUE(t.adaptivePorts(5, 5, 0).empty());
}

TEST(Torus, EscapeRouteIsDimensionOrdered)
{
    Torus2D t(4, 4);
    // X first.
    auto hop = t.escapeRoute(t.nodeAt(0, 0), t.nodeAt(2, 2), 0);
    EXPECT_TRUE(hop.port == portEast || hop.port == portWest);
    // Then Y once columns match.
    hop = t.escapeRoute(t.nodeAt(2, 0), t.nodeAt(2, 2), 0);
    EXPECT_TRUE(hop.port == portNorth || hop.port == portSouth);
    // Arrived.
    EXPECT_EQ(t.escapeRoute(5, 5, 0).port, -1);
}

TEST(Torus, EscapeDatelineVcRule)
{
    Torus2D t(8, 1);
    // Going East with the destination "behind" us crosses the wrap:
    // node 6 -> node 1 goes E (distance 3) and must use VC1.
    auto hop = t.escapeRoute(t.nodeAt(6, 0), t.nodeAt(1, 0), 0);
    EXPECT_EQ(hop.port, portEast);
    EXPECT_EQ(hop.vc, 1);
    // 1 -> 3 East, no wrap: VC0.
    hop = t.escapeRoute(t.nodeAt(1, 0), t.nodeAt(3, 0), 0);
    EXPECT_EQ(hop.port, portEast);
    EXPECT_EQ(hop.vc, 0);
}

// ------------------------------------------------------------------
// Parameterized properties over shipped shapes.
// ------------------------------------------------------------------

class TorusShapes
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(TorusShapes, BfsMatchesClosedFormDistance)
{
    auto [w, h] = GetParam();
    Torus2D t(w, h);
    for (NodeId src = 0; src < t.numNodes(); ++src) {
        auto dist = t.distancesFrom(src);
        for (NodeId dst = 0; dst < t.numNodes(); ++dst) {
            EXPECT_EQ(dist[static_cast<std::size_t>(dst)],
                      t.torusDistance(src, dst))
                << w << "x" << h << " " << src << "->" << dst;
        }
    }
}

TEST_P(TorusShapes, EscapeRouteTerminatesMinimally)
{
    auto [w, h] = GetParam();
    Torus2D t(w, h);
    for (NodeId src = 0; src < t.numNodes(); ++src) {
        for (NodeId dst = 0; dst < t.numNodes(); ++dst) {
            NodeId at = src;
            int hops = 0;
            while (at != dst) {
                auto hop = t.escapeRoute(at, dst, 0);
                ASSERT_GE(hop.port, 0);
                at = t.port(at, hop.port).peer;
                hops += 1;
                ASSERT_LE(hops, w + h) << "non-terminating route";
            }
            EXPECT_EQ(hops, t.torusDistance(src, dst));
        }
    }
}

TEST_P(TorusShapes, AdaptivePortsAlwaysReduceDistance)
{
    auto [w, h] = GetParam();
    Torus2D t(w, h);
    for (NodeId src = 0; src < t.numNodes(); ++src) {
        for (NodeId dst = 0; dst < t.numNodes(); ++dst) {
            if (src == dst)
                continue;
            auto ports = t.adaptivePorts(src, dst, 0);
            ASSERT_FALSE(ports.empty());
            for (int p : ports) {
                NodeId next = t.port(src, p).peer;
                EXPECT_EQ(t.torusDistance(next, dst),
                          t.torusDistance(src, dst) - 1);
            }
        }
    }
}

TEST_P(TorusShapes, ConnectedAndSymmetric)
{
    auto [w, h] = GetParam();
    Torus2D t(w, h);
    EXPECT_TRUE(t.connected());
    EXPECT_EQ(t.hopDistance(0, t.numNodes() - 1),
              t.hopDistance(t.numNodes() - 1, 0));
}

INSTANTIATE_TEST_SUITE_P(
    ShippedShapes, TorusShapes,
    ::testing::Values(std::pair{2, 1}, std::pair{2, 2},
                      std::pair{4, 2}, std::pair{4, 3},
                      std::pair{4, 4}, std::pair{8, 4},
                      std::pair{8, 8}, std::pair{5, 3}));

} // namespace

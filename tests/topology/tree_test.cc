/** @file QBB switch-tree (GS320/ES45) topology tests. */

#include <gtest/gtest.h>

#include "topology/tree.hh"

namespace
{

using namespace gs;
using namespace gs::topo;

TEST(QbbTree, Gs320ShapeAndCounts)
{
    QbbTree t(16, 4);
    EXPECT_EQ(t.qbbCount(), 4);
    EXPECT_TRUE(t.hasGlobalSwitch());
    EXPECT_EQ(t.numCpuNodes(), 16);
    EXPECT_EQ(t.numNodes(), 16 + 4 + 1);
    EXPECT_EQ(t.qbbSwitchOf(0), 16);
    EXPECT_EQ(t.qbbSwitchOf(5), 17);
    EXPECT_EQ(t.globalSwitch(), 20);
}

TEST(QbbTree, SingleQbbHasNoGlobalSwitch)
{
    QbbTree t(4, 4);
    EXPECT_FALSE(t.hasGlobalSwitch());
    EXPECT_EQ(t.numNodes(), 5);
}

TEST(QbbTree, PortPairingIsConsistent)
{
    QbbTree t(16, 4);
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        for (int p = 0; p < t.numPorts(n); ++p) {
            Port fwd = t.port(n, p);
            ASSERT_TRUE(fwd.connected());
            Port back = t.port(fwd.peer, fwd.peerPort);
            EXPECT_EQ(back.peer, n);
            EXPECT_EQ(back.peerPort, p);
        }
    }
}

TEST(QbbTree, EscapeRoutesUpThenDown)
{
    QbbTree t(16, 4);
    // CPU 0 -> CPU 1 (same QBB): up to switch (VC0), down (VC1).
    auto hop = t.escapeRoute(0, 1, 0);
    EXPECT_EQ(t.port(0, hop.port).peer, t.qbbSwitchOf(0));
    EXPECT_EQ(hop.vc, 0);
    hop = t.escapeRoute(t.qbbSwitchOf(0), 1, 0);
    EXPECT_EQ(t.port(t.qbbSwitchOf(0), hop.port).peer, 1);
    EXPECT_EQ(hop.vc, 1);

    // CPU 0 -> CPU 12 (remote QBB) passes the global switch.
    hop = t.escapeRoute(t.qbbSwitchOf(0), 12, 0);
    EXPECT_EQ(t.port(t.qbbSwitchOf(0), hop.port).peer,
              t.globalSwitch());
    hop = t.escapeRoute(t.globalSwitch(), 12, 0);
    EXPECT_EQ(t.port(t.globalSwitch(), hop.port).peer,
              t.qbbSwitchOf(12));
}

TEST(QbbTree, EscapeTerminatesForAllCpuPairs)
{
    QbbTree t(32, 4);
    for (NodeId src = 0; src < t.numCpuNodes(); ++src) {
        for (NodeId dst = 0; dst < t.numCpuNodes(); ++dst) {
            if (src == dst)
                continue;
            NodeId at = src;
            int hops = 0;
            while (at != dst) {
                auto hop = t.escapeRoute(at, dst, 0);
                ASSERT_GE(hop.port, 0);
                at = t.port(at, hop.port).peer;
                hops += 1;
                ASSERT_LE(hops, 4);
            }
            int expect = src / 4 == dst / 4 ? 2 : 4;
            EXPECT_EQ(hops, expect);
        }
    }
}

TEST(QbbTree, NoAdaptivity)
{
    QbbTree t(16, 4);
    EXPECT_TRUE(t.adaptivePorts(0, 12, 0).empty());
}

TEST(QbbTree, TwoLevelLatencyProfile)
{
    QbbTree t(16, 4);
    // Local (same QBB) distance 2, remote distance 4: the GS320's
    // two-level latency structure of Figure 12.
    EXPECT_EQ(t.hopDistance(0, 1), 2);
    EXPECT_EQ(t.hopDistance(0, 15), 4);
}

TEST(Bus, MakeBusIsSingleSwitch)
{
    QbbTree bus = makeBus(4);
    EXPECT_EQ(bus.numNodes(), 5);
    EXPECT_FALSE(bus.hasGlobalSwitch());
    EXPECT_EQ(bus.hopDistance(0, 3), 2);
}

} // namespace

/** @file 3-D torus tests: geometry, exhaustive routing oracles over
 *  small shapes, ring-helper regressions, and 2-D equivalence of a
 *  single-slab machine. */

#include <gtest/gtest.h>

#include <tuple>

#include "topology/ring.hh"
#include "topology/torus.hh"
#include "topology/torus3d.hh"

namespace
{

using namespace gs;
using namespace gs::topo;

// ------------------------------------------------------------------
// Ring helpers: the shared size-1/size-2/dateline semantics both
// tori route through.
// ------------------------------------------------------------------

TEST(Ring, SizeOneContributesNothing)
{
    EXPECT_FALSE(ring::hasLinks(1));
    EXPECT_EQ(ring::distance(0, 0, 1), 0);
    EXPECT_EQ(ring::fwdOffset(0, 0, 1), 0);
    EXPECT_FALSE(ring::nominateFwd(0, 1));
    EXPECT_FALSE(ring::nominateBwd(0, 1));
}

TEST(Ring, SizeTwoNominatesBothDirections)
{
    // On a 2-ring the single non-self offset ties both ways: the
    // two physically distinct links are both minimal.
    int fwd = ring::fwdOffset(0, 1, 2);
    EXPECT_EQ(fwd, 1);
    EXPECT_TRUE(ring::nominateFwd(fwd, 2));
    EXPECT_TRUE(ring::nominateBwd(fwd, 2));
    EXPECT_EQ(ring::distance(0, 1, 2), 1);
}

TEST(Ring, EvenSizeTieNominatesBoth)
{
    // Opposite points of an even ring are equidistant both ways.
    int fwd = ring::fwdOffset(1, 5, 8);
    EXPECT_EQ(fwd, 4);
    EXPECT_TRUE(ring::nominateFwd(fwd, 8));
    EXPECT_TRUE(ring::nominateBwd(fwd, 8));
    // But the escape route is deterministic: forward wins the tie.
    EXPECT_TRUE(ring::escapeHop(1, 5, 8).forward);
}

TEST(Ring, DatelineVcIsPositional)
{
    // Forward with the destination behind = crossing the wrap: VC1.
    auto hop = ring::escapeHop(6, 1, 8);
    EXPECT_TRUE(hop.forward);
    EXPECT_EQ(hop.vc, 1);
    // Forward, destination ahead: VC0.
    hop = ring::escapeHop(1, 3, 8);
    EXPECT_TRUE(hop.forward);
    EXPECT_EQ(hop.vc, 0);
    // Backward, destination ahead = crossing the wrap: VC1.
    hop = ring::escapeHop(1, 6, 8);
    EXPECT_FALSE(hop.forward);
    EXPECT_EQ(hop.vc, 1);
    // Backward, destination behind: VC0.
    hop = ring::escapeHop(3, 1, 8);
    EXPECT_FALSE(hop.forward);
    EXPECT_EQ(hop.vc, 0);
}

// The 2-D torus regressed onto the helpers must keep its shipped
// size-2 semantics: both vertical ports of a 2-row machine reach
// the same peer and both are nominated.
TEST(Ring, TwoWideDimensionRegression2D)
{
    Torus2D t(4, 2);
    NodeId n = t.nodeAt(1, 0);
    NodeId up = t.nodeAt(1, 1);
    EXPECT_EQ(t.port(n, portNorth).peer, up);
    EXPECT_EQ(t.port(n, portSouth).peer, up);
    auto ports = t.adaptivePorts(n, up, 0);
    EXPECT_EQ(ports.size(), 2u);
}

TEST(Ring, TwoWideDimensionRegression3D)
{
    Torus3D t(4, 2, 2);
    NodeId n = t.nodeAt(1, 0, 0);
    // Both N/S and both U/D pairs are parallel minimal links.
    EXPECT_EQ(t.port(n, portNorth).peer, t.nodeAt(1, 1, 0));
    EXPECT_EQ(t.port(n, portSouth).peer, t.nodeAt(1, 1, 0));
    EXPECT_EQ(t.port(n, portUp).peer, t.nodeAt(1, 0, 1));
    EXPECT_EQ(t.port(n, portDown).peer, t.nodeAt(1, 0, 1));
    auto ports = t.adaptivePorts(n, t.nodeAt(1, 1, 1), 0);
    EXPECT_EQ(ports.size(), 4u); // N, S, U, D
}

// ------------------------------------------------------------------
// Geometry.
// ------------------------------------------------------------------

TEST(Torus3D, GeometryMapping)
{
    Torus3D t(4, 3, 2);
    EXPECT_EQ(t.numNodes(), 24);
    NodeId n = t.nodeAt(1, 2, 1);
    EXPECT_EQ(n, (1 * 3 + 2) * 4 + 1);
    EXPECT_EQ(t.xOf(n), 1);
    EXPECT_EQ(t.yOf(n), 2);
    EXPECT_EQ(t.zOf(n), 1);
}

TEST(Torus3D, PortPairingIsConsistent)
{
    Torus3D t(3, 3, 2);
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        for (int p = 0; p < t.numPorts(n); ++p) {
            Port fwd = t.port(n, p);
            if (!fwd.connected())
                continue;
            Port back = t.port(fwd.peer, fwd.peerPort);
            EXPECT_EQ(back.peer, n) << "node " << n << " port " << p;
            EXPECT_EQ(back.peerPort, p);
        }
    }
}

TEST(Torus3D, DegenerateDimensions)
{
    Torus3D line(4, 1, 1);
    EXPECT_TRUE(line.port(0, portEast).connected());
    EXPECT_FALSE(line.port(0, portNorth).connected());
    EXPECT_FALSE(line.port(0, portSouth).connected());
    EXPECT_FALSE(line.port(0, portUp).connected());
    EXPECT_FALSE(line.port(0, portDown).connected());

    Torus3D single(1, 1, 1);
    for (int p = 0; p < torus3dPorts; ++p)
        EXPECT_FALSE(single.port(0, p).connected());
}

TEST(Torus3D, ZLinksAreCables)
{
    Torus3D t(4, 4, 4);
    EXPECT_EQ(t.port(0, portUp).kind, LinkKind::Cable);
    EXPECT_EQ(t.port(0, portDown).kind, LinkKind::Cable);
    // In-slab packaging matches the 2-D machine.
    EXPECT_EQ(t.port(t.nodeAt(0, 0, 2), portNorth).kind,
              LinkKind::OnModule);
}

// A single-slab 3-D torus is a 2-D torus with four dead ports: same
// connectivity, same kinds, same routes on E/W/N/S.
TEST(Torus3D, SingleSlabMatchesTorus2D)
{
    Torus2D t2(4, 3);
    Torus3D t3(4, 3, 1);
    ASSERT_EQ(t3.numNodes(), t2.numNodes());
    for (NodeId a = 0; a < t2.numNodes(); ++a) {
        for (int p = 0; p < torusPorts; ++p) {
            Port p2 = t2.port(a, p), p3 = t3.port(a, p);
            EXPECT_EQ(p2.peer, p3.peer);
            EXPECT_EQ(p2.peerPort, p3.peerPort);
            EXPECT_EQ(p2.kind, p3.kind);
        }
        EXPECT_FALSE(t3.port(a, portUp).connected());
        EXPECT_FALSE(t3.port(a, portDown).connected());
        for (NodeId b = 0; b < t2.numNodes(); ++b) {
            EXPECT_EQ(t2.torusDistance(a, b), t3.torusDistance(a, b));
            EXPECT_EQ(t2.adaptivePorts(a, b, 0),
                      t3.adaptivePorts(a, b, 0));
            auto e2 = t2.escapeRoute(a, b, 0);
            auto e3 = t3.escapeRoute(a, b, 0);
            EXPECT_EQ(e2.port, e3.port);
            EXPECT_EQ(e2.vc, e3.vc);
        }
    }
}

// ------------------------------------------------------------------
// Exhaustive routing properties vs. the BFS oracle, over the small
// shapes that exercise every size class (2, 3, 4, 1).
// ------------------------------------------------------------------

class Torus3DShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(Torus3DShapes, BfsMatchesClosedFormDistance)
{
    auto [w, h, d] = GetParam();
    Torus3D t(w, h, d);
    for (NodeId src = 0; src < t.numNodes(); ++src) {
        auto dist = t.distancesFrom(src);
        for (NodeId dst = 0; dst < t.numNodes(); ++dst) {
            EXPECT_EQ(dist[static_cast<std::size_t>(dst)],
                      t.torusDistance(src, dst))
                << w << "x" << h << "x" << d << " " << src << "->"
                << dst;
        }
    }
}

TEST_P(Torus3DShapes, EscapeRouteTerminatesMinimally)
{
    auto [w, h, d] = GetParam();
    Torus3D t(w, h, d);
    for (NodeId src = 0; src < t.numNodes(); ++src) {
        for (NodeId dst = 0; dst < t.numNodes(); ++dst) {
            NodeId at = src;
            int hops = 0;
            while (at != dst) {
                auto hop = t.escapeRoute(at, dst, 0);
                ASSERT_GE(hop.port, 0);
                at = t.port(at, hop.port).peer;
                hops += 1;
                ASSERT_LE(hops, w + h + d) << "non-terminating route";
            }
            EXPECT_EQ(hops, t.torusDistance(src, dst));
        }
    }
}

// The positional dateline rule requests VC1 exactly while the leg
// still has the wrap edge ahead of it and VC0 after crossing — so
// within one dimension's leg the VC sequence never steps back up
// from 0 to 1, the monotonicity that makes the escape network
// deadlock-free (docs/ROUTER.md).
TEST_P(Torus3DShapes, EscapeDatelineVcNeverStepsBackUp)
{
    auto [w, h, d] = GetParam();
    Torus3D t(w, h, d);
    for (NodeId src = 0; src < t.numNodes(); ++src) {
        for (NodeId dst = 0; dst < t.numNodes(); ++dst) {
            NodeId at = src;
            int lastDim = -1, lastVc = 1;
            while (at != dst) {
                auto hop = t.escapeRoute(at, dst, 0);
                int dim = hop.port / 2;
                if (dim == lastDim)
                    EXPECT_LE(hop.vc, lastVc)
                        << src << "->" << dst << " at " << at;
                else
                    EXPECT_GT(dim, lastDim) << "dimension order";
                lastDim = dim;
                lastVc = hop.vc;
                at = t.port(at, hop.port).peer;
            }
        }
    }
}

TEST_P(Torus3DShapes, AdaptivePortsAlwaysReduceDistance)
{
    auto [w, h, d] = GetParam();
    Torus3D t(w, h, d);
    for (NodeId src = 0; src < t.numNodes(); ++src) {
        for (NodeId dst = 0; dst < t.numNodes(); ++dst) {
            if (src == dst)
                continue;
            auto ports = t.adaptivePorts(src, dst, 0);
            ASSERT_FALSE(ports.empty());
            for (int p : ports) {
                NodeId next = t.port(src, p).peer;
                EXPECT_EQ(t.torusDistance(next, dst),
                          t.torusDistance(src, dst) - 1);
            }
        }
    }
}

// Every minimal direction is nominated: a neighbour that reduces
// distance is reachable through some nominated port.
TEST_P(Torus3DShapes, AdaptivePortsAreComplete)
{
    auto [w, h, d] = GetParam();
    Torus3D t(w, h, d);
    for (NodeId src = 0; src < t.numNodes(); ++src) {
        for (NodeId dst = 0; dst < t.numNodes(); ++dst) {
            if (src == dst)
                continue;
            auto ports = t.adaptivePorts(src, dst, 0);
            for (int p = 0; p < t.numPorts(src); ++p) {
                Port link = t.port(src, p);
                if (!link.connected())
                    continue;
                if (t.torusDistance(link.peer, dst) !=
                    t.torusDistance(src, dst) - 1)
                    continue;
                bool nominated = false;
                for (int q : ports)
                    nominated |= t.port(src, q).peer == link.peer;
                EXPECT_TRUE(nominated)
                    << src << "->" << dst << " via port " << p;
            }
        }
    }
}

TEST_P(Torus3DShapes, ConnectedAndSymmetric)
{
    auto [w, h, d] = GetParam();
    Torus3D t(w, h, d);
    EXPECT_TRUE(t.connected());
    EXPECT_EQ(t.hopDistance(0, t.numNodes() - 1),
              t.hopDistance(t.numNodes() - 1, 0));
}

INSTANTIATE_TEST_SUITE_P(
    SmallShapes, Torus3DShapes,
    ::testing::Values(std::tuple{2, 2, 2}, std::tuple{3, 3, 2},
                      std::tuple{4, 1, 1}, std::tuple{1, 1, 1},
                      std::tuple{2, 1, 2}, std::tuple{4, 3, 2},
                      std::tuple{3, 4, 5}));

} // namespace

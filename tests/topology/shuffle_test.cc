/** @file Shuffle rewiring tests (Section 4.1 / Table 1). */

#include <gtest/gtest.h>

#include <set>

#include "topology/shuffle.hh"

namespace
{

using namespace gs;
using namespace gs::topo;

TEST(Shuffle, FourByTwoMatchesFigure17)
{
    // The 8-CPU machine: redundant N/S links reconnect the furthest
    // nodes. Node (0,0)'s rewired South link reaches (2,1), its
    // antipode.
    ShuffleTorus s(4, 2);
    EXPECT_EQ(s.port(s.nodeAt(0, 0), portSouth).peer, s.nodeAt(2, 1));
    // The direct pair link survives.
    EXPECT_EQ(s.port(s.nodeAt(0, 0), portNorth).peer, s.nodeAt(0, 1));
    // X links are untouched.
    EXPECT_EQ(s.port(s.nodeAt(0, 0), portEast).peer, s.nodeAt(1, 0));
}

TEST(Shuffle, PortPairingIsConsistent)
{
    for (auto [w, h] : {std::pair{4, 2}, {4, 4}, {8, 4}}) {
        ShuffleTorus s(w, h);
        for (NodeId n = 0; n < s.numNodes(); ++n) {
            for (int p = 0; p < s.numPorts(n); ++p) {
                Port fwd = s.port(n, p);
                if (!fwd.connected())
                    continue;
                Port back = s.port(fwd.peer, fwd.peerPort);
                EXPECT_EQ(back.peer, n)
                    << w << "x" << h << " node " << n << " port " << p;
                EXPECT_EQ(back.peerPort, p);
            }
        }
    }
}

TEST(Shuffle, ShufflePortsAreTopAndBottomRows)
{
    ShuffleTorus s(8, 4);
    for (NodeId n = 0; n < s.numNodes(); ++n) {
        int y = s.yOf(n);
        EXPECT_EQ(s.isShufflePort(n, portNorth), y == 3);
        EXPECT_EQ(s.isShufflePort(n, portSouth), y == 0);
        EXPECT_FALSE(s.isShufflePort(n, portEast));
        EXPECT_FALSE(s.isShufflePort(n, portWest));
    }
}

TEST(Shuffle, FourByTwoGainsMatchPaperRow)
{
    // Table 1 row "4x2": avg latency gain 1.200, worst 1.500.
    Torus2D torus(4, 2);
    ShuffleTorus shuffle(4, 2, ShufflePolicy::Free);
    EXPECT_NEAR(torus.averageDistance() / shuffle.averageDistance(),
                1.200, 0.001);
    EXPECT_NEAR(static_cast<double>(torus.worstDistance()) /
                    shuffle.worstDistance(),
                1.500, 0.001);
}

TEST(Shuffle, FourByFourGainsMatchPaperRow)
{
    Torus2D torus(4, 4);
    ShuffleTorus shuffle(4, 4, ShufflePolicy::Free);
    EXPECT_NEAR(torus.averageDistance() / shuffle.averageDistance(),
                1.067, 0.001);
    EXPECT_NEAR(static_cast<double>(torus.worstDistance()) /
                    shuffle.worstDistance(),
                4.0 / 3.0, 0.001);
}

class ShuffleShapes
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(ShuffleShapes, ConnectedAndNeverWorseThanTorus)
{
    auto [w, h] = GetParam();
    Torus2D torus(w, h);
    ShuffleTorus shuffle(w, h, ShufflePolicy::Free);
    EXPECT_TRUE(shuffle.connected());
    EXPECT_LE(shuffle.averageDistance(), torus.averageDistance());
    EXPECT_LE(shuffle.worstDistance(), torus.worstDistance());
}

TEST_P(ShuffleShapes, EscapeRouteTerminates)
{
    auto [w, h] = GetParam();
    for (auto policy : {ShufflePolicy::OneHop, ShufflePolicy::TwoHop,
                        ShufflePolicy::Free}) {
        ShuffleTorus s(w, h, policy);
        for (NodeId src = 0; src < s.numNodes(); ++src) {
            for (NodeId dst = 0; dst < s.numNodes(); ++dst) {
                NodeId at = src;
                int hops = 0;
                while (at != dst) {
                    auto hop = s.escapeRoute(at, dst, 0);
                    ASSERT_GE(hop.port, 0);
                    ASSERT_TRUE(hop.vc == 0 || hop.vc == 1);
                    at = s.port(at, hop.port).peer;
                    hops += 1;
                    ASSERT_LE(hops, 2 * (w + h))
                        << "non-terminating escape " << src << "->"
                        << dst;
                }
            }
        }
    }
}

TEST_P(ShuffleShapes, AdaptiveRoutesTerminateUnderEveryPolicy)
{
    auto [w, h] = GetParam();
    for (auto policy : {ShufflePolicy::OneHop, ShufflePolicy::TwoHop,
                        ShufflePolicy::Free}) {
        ShuffleTorus s(w, h, policy);
        for (NodeId src = 0; src < s.numNodes(); ++src) {
            for (NodeId dst = 0; dst < s.numNodes(); ++dst) {
                NodeId at = src;
                int hops = 0;
                while (at != dst) {
                    auto ports = s.adaptivePorts(at, dst, hops);
                    ASSERT_FALSE(ports.empty())
                        << "stuck at " << at << " for " << dst;
                    // Worst-case choice must still terminate.
                    at = s.port(at, ports.back()).peer;
                    hops += 1;
                    ASSERT_LE(hops, 2 * (w + h));
                }
            }
        }
    }
}

TEST_P(ShuffleShapes, OneHopPolicyOnlyUsesShuffleOnFirstHop)
{
    auto [w, h] = GetParam();
    ShuffleTorus s(w, h, ShufflePolicy::OneHop);
    for (NodeId at = 0; at < s.numNodes(); ++at) {
        for (NodeId dst = 0; dst < s.numNodes(); ++dst) {
            if (at == dst)
                continue;
            for (int hops = 1; hops <= 3; ++hops) {
                for (int p : s.adaptivePorts(at, dst, hops))
                    EXPECT_FALSE(s.isShufflePort(at, p))
                        << "shuffle link offered at hop " << hops;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShuffleShapes,
                         ::testing::Values(std::pair{4, 2},
                                           std::pair{4, 4},
                                           std::pair{8, 4},
                                           std::pair{8, 8},
                                           std::pair{6, 3}));

} // namespace

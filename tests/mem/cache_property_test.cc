/** @file Randomized cache model check against a naive reference
 *  implementation (map + per-set LRU lists). */

#include <gtest/gtest.h>

#include <list>
#include <map>

#include "mem/cache.hh"
#include "sim/random.hh"

namespace
{

using namespace gs;
using namespace gs::mem;

/** Straight-line reference: per-set LRU list of (tag, state). */
class RefCache
{
  public:
    RefCache(int sets, int ways) : nSets(sets), nWays(ways),
                                   lru(static_cast<std::size_t>(sets))
    {
    }

    bool
    contains(Addr a) const
    {
        const auto &set = lru[setOf(a)];
        for (const auto &[tag, state] : set)
            if (tag == lineOf(a))
                return true;
        return false;
    }

    LineState
    state(Addr a) const
    {
        const auto &set = lru[setOf(a)];
        for (const auto &[tag, st] : set)
            if (tag == lineOf(a))
                return st;
        return LineState::Invalid;
    }

    void
    touch(Addr a)
    {
        auto &set = lru[setOf(a)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->first == lineOf(a)) {
                set.splice(set.begin(), set, it);
                return;
            }
        }
    }

    /** Insert MRU; return victim line or nullopt. */
    std::optional<std::pair<Addr, LineState>>
    fill(Addr a, LineState st)
    {
        auto &set = lru[setOf(a)];
        set.emplace_front(lineOf(a), st);
        if (static_cast<int>(set.size()) > nWays) {
            auto victim = set.back();
            set.pop_back();
            return victim;
        }
        return std::nullopt;
    }

    void
    invalidate(Addr a)
    {
        auto &set = lru[setOf(a)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->first == lineOf(a)) {
                set.erase(it);
                return;
            }
        }
    }

    void
    setState(Addr a, LineState st)
    {
        auto &set = lru[setOf(a)];
        for (auto &[tag, s] : set)
            if (tag == lineOf(a))
                s = st;
    }

  private:
    std::size_t
    setOf(Addr a) const
    {
        return static_cast<std::size_t>(
            lineIndex(a) % static_cast<std::uint64_t>(nSets));
    }

    int nSets, nWays;
    std::vector<std::list<std::pair<Addr, LineState>>> lru;
};

struct Geometry
{
    int sets;
    int ways;
    std::uint64_t seed;
};

class CacheVsReference : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheVsReference, RandomOpsAgree)
{
    const auto [sets, ways, seed] = GetParam();
    CacheParams prm;
    prm.sizeBytes =
        static_cast<std::uint64_t>(sets) * ways * lineBytes;
    prm.ways = ways;
    Cache cache(prm);
    RefCache ref(sets, ways);
    Rng rng(seed);

    const std::uint64_t lines =
        static_cast<std::uint64_t>(sets) * ways * 4; // 4x capacity
    for (int step = 0; step < 4000; ++step) {
        Addr a = rng.below(lines) * lineBytes;
        switch (rng.below(4)) {
          case 0: { // lookup (+fill on miss)
            bool hit = cache.lookup(a, false).hit;
            ASSERT_EQ(hit, ref.contains(a)) << "step " << step;
            if (hit) {
                ref.touch(a);
            } else {
                Victim v = cache.fill(a, LineState::Shared);
                auto rv = ref.fill(a, LineState::Shared);
                ASSERT_EQ(v.valid(), rv.has_value()) << "step " << step;
                if (rv) {
                    ASSERT_EQ(v.line, rv->first);
                    ASSERT_EQ(v.state, rv->second);
                }
            }
            break;
          }
          case 1: // invalidate
            cache.invalidate(a);
            ref.invalidate(a);
            break;
          case 2: // state change if resident
            if (ref.contains(a)) {
                cache.setState(a, LineState::Modified);
                ref.setState(a, LineState::Modified);
            }
            break;
          default: // state probe
            ASSERT_EQ(cache.state(a), ref.state(a)) << "step " << step;
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReference,
    ::testing::Values(Geometry{1, 1, 11}, Geometry{1, 7, 12},
                      Geometry{4, 2, 13}, Geometry{16, 1, 14},
                      Geometry{8, 4, 15}, Geometry{2, 7, 16}));

} // namespace

/** @file Address map tests: region partitioning and Section 6
 *  striping semantics. */

#include <gtest/gtest.h>

#include "mem/address.hh"

namespace
{

using namespace gs;
using namespace gs::mem;

TEST(Address, LineHelpers)
{
    EXPECT_EQ(lineOf(0x1234), 0x1200u + 0x00u); // 0x1234 & ~63
    EXPECT_EQ(lineOf(0x1234), (0x1234ULL / 64) * 64);
    EXPECT_EQ(lineIndex(128), 2u);
}

TEST(Address, RegionsPartitionTheSpace)
{
    for (NodeId n : {0, 1, 7, 63}) {
        Addr base = regionBase(n);
        EXPECT_EQ(regionNode(base), n);
        EXPECT_EQ(regionNode(base + (1ULL << 35)), n);
    }
    EXPECT_NE(regionBase(3), regionBase(4));
}

TEST(NodeOwned, HomeIsRegionNode)
{
    NodeOwnedMap map;
    for (NodeId n : {0, 5, 63}) {
        auto t = map.home(regionBase(n) + 4096);
        EXPECT_EQ(t.node, n);
    }
}

TEST(NodeOwned, ControllersAlternateByLine)
{
    NodeOwnedMap map;
    Addr base = regionBase(2);
    EXPECT_EQ(map.home(base + 0 * lineBytes).mc, 0);
    EXPECT_EQ(map.home(base + 1 * lineBytes).mc, 1);
    EXPECT_EQ(map.home(base + 2 * lineBytes).mc, 0);
}

TEST(Striped, FourLineRotation)
{
    // Buddy of node n is n^1 for the test.
    StripedMap map([](NodeId n) { return n ^ 1; });
    Addr base = regionBase(4);
    // Paper: CPU0/ctl0, CPU0/ctl1, CPU1/ctl0, CPU1/ctl1, repeat.
    EXPECT_EQ(map.home(base + 0 * lineBytes), (MemTarget{4, 0}));
    EXPECT_EQ(map.home(base + 1 * lineBytes), (MemTarget{4, 1}));
    EXPECT_EQ(map.home(base + 2 * lineBytes), (MemTarget{5, 0}));
    EXPECT_EQ(map.home(base + 3 * lineBytes), (MemTarget{5, 1}));
    EXPECT_EQ(map.home(base + 4 * lineBytes), (MemTarget{4, 0}));
}

TEST(Striped, HalfTheLinesGoRemote)
{
    StripedMap map([](NodeId n) { return n ^ 1; });
    int remote = 0;
    const int lines = 1000;
    for (int i = 0; i < lines; ++i) {
        auto t = map.home(regionBase(0) +
                          static_cast<Addr>(i) * lineBytes);
        remote += t.node != 0;
    }
    EXPECT_EQ(remote, lines / 2);
}

TEST(SharedHome, MapsRegionsToMemoryNode)
{
    // 4 CPUs per QBB: regions 0-3 home on node 16, 4-7 on 17 (as in
    // a 16-CPU GS320).
    SharedHomeMap map([](NodeId region) {
        return static_cast<NodeId>(16 + region / 4);
    });
    EXPECT_EQ(map.home(regionBase(0)).node, 16);
    EXPECT_EQ(map.home(regionBase(3)).node, 16);
    EXPECT_EQ(map.home(regionBase(4)).node, 17);
    EXPECT_EQ(map.home(regionBase(15)).node, 19);
}

TEST(Address, SubLineAddressesShareAHome)
{
    StripedMap map([](NodeId n) { return n ^ 1; });
    Addr base = regionBase(6) + 2 * lineBytes;
    EXPECT_EQ(map.home(base), map.home(base + 63));
}

} // namespace

/** @file Cache model tests: geometry, LRU, states, eviction. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace
{

using namespace gs;
using namespace gs::mem;

CacheParams
tiny(int sets, int ways)
{
    CacheParams p;
    p.sizeBytes = static_cast<std::uint64_t>(sets) * ways * lineBytes;
    p.ways = ways;
    return p;
}

TEST(Cache, GeometryFromParams)
{
    Cache ev7(CacheParams::ev7L2());
    EXPECT_EQ(ev7.params().ways, 7);
    EXPECT_EQ(ev7.lines() * lineBytes, 1792u * 1024u);

    Cache ev68(CacheParams::ev68L2());
    EXPECT_EQ(ev68.params().ways, 1);
    EXPECT_EQ(ev68.lines() * lineBytes, 16u * 1024u * 1024u);
}

TEST(Cache, MissThenHit)
{
    Cache c(tiny(4, 2));
    EXPECT_FALSE(c.lookup(0x100, false).hit);
    c.fill(0x100, LineState::Shared);
    auto r = c.lookup(0x100, false);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.state, LineState::Shared);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SubLineAddressesShareALine)
{
    Cache c(tiny(4, 2));
    c.fill(0x140, LineState::Exclusive);
    EXPECT_TRUE(c.lookup(0x17f, false).hit);
    EXPECT_TRUE(c.lookup(0x140, true).hit);
    EXPECT_FALSE(c.lookup(0x180, false).hit);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tiny(1, 2)); // one set, two ways
    c.fill(0 * lineBytes, LineState::Shared);
    c.fill(1 * lineBytes, LineState::Shared);
    c.lookup(0, false); // touch line 0: line 1 becomes LRU
    Victim v = c.fill(2 * lineBytes, LineState::Shared);
    ASSERT_TRUE(v.valid());
    EXPECT_EQ(v.line, 1 * lineBytes);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(2 * lineBytes));
    EXPECT_FALSE(c.contains(1 * lineBytes));
}

TEST(Cache, VictimCarriesState)
{
    Cache c(tiny(1, 1));
    c.fill(0, LineState::Modified);
    Victim v = c.fill(64 * 97, LineState::Shared); // same set
    ASSERT_TRUE(v.valid());
    EXPECT_TRUE(v.dirty());
    EXPECT_EQ(v.state, LineState::Modified);
}

TEST(Cache, FillIntoFreeWayHasNoVictim)
{
    Cache c(tiny(1, 4));
    for (int i = 0; i < 4; ++i) {
        Victim v = c.fill(static_cast<Addr>(i) * lineBytes,
                          LineState::Shared);
        EXPECT_FALSE(v.valid());
    }
}

TEST(Cache, DirectMappedConflicts)
{
    Cache c(tiny(4, 1));
    // Lines 0 and 4 map to set 0 in a 4-set direct-mapped cache.
    c.fill(0, LineState::Shared);
    Victim v = c.fill(4 * lineBytes, LineState::Shared);
    EXPECT_TRUE(v.valid());
    EXPECT_EQ(v.line, 0u);
}

TEST(Cache, StateTransitions)
{
    Cache c(tiny(2, 2));
    c.fill(0x40, LineState::Exclusive);
    EXPECT_EQ(c.state(0x40), LineState::Exclusive);
    c.setState(0x40, LineState::Modified);
    EXPECT_EQ(c.state(0x40), LineState::Modified);
    c.setState(0x40, LineState::Shared);
    EXPECT_EQ(c.state(0x40), LineState::Shared);
    c.invalidate(0x40);
    EXPECT_EQ(c.state(0x40), LineState::Invalid);
    EXPECT_FALSE(c.contains(0x40));
}

TEST(Cache, InvalidateMissingLineIsNoop)
{
    Cache c(tiny(2, 2));
    c.invalidate(0x1000); // must not crash
    EXPECT_FALSE(c.contains(0x1000));
}

TEST(Cache, ResetDropsEverything)
{
    Cache c(tiny(2, 2));
    c.fill(0, LineState::Modified);
    c.reset();
    EXPECT_FALSE(c.contains(0));
}

TEST(Cache, MissRatioTracksAccesses)
{
    Cache c(tiny(16, 2));
    for (Addr a = 0; a < 16 * lineBytes; a += lineBytes) {
        c.lookup(a, false);
        c.fill(a, LineState::Shared);
    }
    for (Addr a = 0; a < 16 * lineBytes; a += lineBytes)
        c.lookup(a, false);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.5);
    c.clearStats();
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.0);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes)
{
    Cache c(tiny(8, 2)); // 16 lines
    // Stream 64 distinct lines twice: second pass still misses
    // (LRU streaming gets no reuse).
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr a = 0; a < 64 * lineBytes; a += lineBytes) {
            if (!c.lookup(a, false).hit)
                c.fill(a, LineState::Shared);
        }
    }
    EXPECT_EQ(c.misses(), 128u);
}

TEST(CacheDeath, DoubleFillPanics)
{
    Cache c(tiny(2, 2));
    c.fill(0x40, LineState::Shared);
    EXPECT_DEATH(c.fill(0x40, LineState::Shared), "resident");
}

} // namespace

/** @file Zbox (RDRAM controller) timing tests. */

#include <gtest/gtest.h>

#include "mem/zbox.hh"

namespace
{

using namespace gs;
using namespace gs::mem;

double
readLatencyNs(Zbox &z, SimContext &ctx, Addr a)
{
    Tick start = ctx.now();
    Tick end = 0;
    z.read(a, [&] { end = ctx.now(); });
    ctx.queue().runUntil();
    return ticksToNs(end - start);
}

TEST(Zbox, FirstAccessIsRowEmpty)
{
    SimContext ctx;
    Zbox z(ctx, ZboxParams::ev7());
    double ns = readLatencyNs(z, ctx, 0);
    EXPECT_DOUBLE_EQ(ns, z.params().rowEmptyNs);
    EXPECT_EQ(z.stats().rowEmpties, 1u);
}

TEST(Zbox, SequentialLinesHitOpenRows)
{
    SimContext ctx;
    ZboxParams p = ZboxParams::ev7();
    Zbox z(ctx, p);
    // Stream enough lines that every bank's row is open, then count.
    for (Addr a = 0; a < 4096 * lineBytes; a += 2 * lineBytes)
        z.read(a, [] {});
    ctx.queue().runUntil();
    auto total = z.stats().rowHits + z.stats().rowEmpties +
                 z.stats().rowConflicts;
    EXPECT_EQ(total, 2048u);
    // One row-empty per bank at most; the rest hit.
    EXPECT_GT(z.stats().rowHits, total * 9 / 10);
    EXPECT_EQ(z.stats().rowConflicts, 0u);
}

TEST(Zbox, LargeStrideConflicts)
{
    SimContext ctx;
    ZboxParams p = ZboxParams::ev7();
    Zbox z(ctx, p);
    // Jump by a full channel x bank x row period so every access
    // lands on a new row of the same bank.
    Addr period = static_cast<Addr>(p.channels) * p.banksPerChannel *
                  (p.pageBytes / lineBytes) * lineBytes * 2;
    for (int i = 0; i < 50; ++i)
        z.read(static_cast<Addr>(i) * period, [] {});
    ctx.queue().runUntil();
    EXPECT_EQ(z.stats().rowEmpties, 1u);
    EXPECT_EQ(z.stats().rowConflicts, 49u);
}

TEST(Zbox, ConflictLatencyHigherThanHit)
{
    SimContext ctx;
    ZboxParams p = ZboxParams::ev7();
    EXPECT_GT(p.rowConflictNs, p.rowEmptyNs);
    EXPECT_GT(p.rowEmptyNs, p.rowHitNs);

    Zbox z(ctx, p);
    // Open the row, let the channel drain, then re-read: a row hit.
    readLatencyNs(z, ctx, 0);
    ctx.queue().schedule(nsToTicks(1000.0), [] {});
    ctx.queue().runUntil();
    double again = readLatencyNs(z, ctx, 0);
    EXPECT_DOUBLE_EQ(again, p.rowHitNs);
}

TEST(Zbox, ChannelOccupancySerializes)
{
    SimContext ctx;
    ZboxParams p = ZboxParams::ev7();
    Zbox z(ctx, p);
    // Prime the row so both measured reads are row hits, then issue
    // two back-to-back reads of the same line: they share a channel
    // and the second completes exactly one burst later.
    z.read(0, [] {});
    ctx.queue().runUntil();
    Tick t1 = 0, t2 = 0;
    z.read(0, [&] { t1 = ctx.now(); });
    z.read(0, [&] { t2 = ctx.now(); });
    ctx.queue().runUntil();
    EXPECT_NEAR(ticksToNs(t2 - t1), p.burstNs, 0.01);
}

TEST(Zbox, ParallelChannelsOverlap)
{
    SimContext ctx;
    ZboxParams p = ZboxParams::ev7();
    Zbox z(ctx, p);
    // Lines 0,2,4,6 (after the interleave shift: 0,1,2,3) hit the
    // four distinct channels and overlap completely.
    std::vector<Tick> done;
    for (Addr a = 0; a < 8 * lineBytes; a += 2 * lineBytes)
        z.read(a, [&] { done.push_back(ctx.now()); });
    ctx.queue().runUntil();
    ASSERT_EQ(done.size(), 4u);
    EXPECT_EQ(done.front(), done.back());
}

TEST(Zbox, PeakBandwidthMatchesPaper)
{
    SimContext ctx;
    Zbox z(ctx, ZboxParams::ev7());
    // One Zbox is half the node's 12.3 GB/s.
    EXPECT_NEAR(z.peakGBs(), 12.3 / 2.0, 0.2);
}

TEST(Zbox, UtilizationAccounting)
{
    SimContext ctx;
    ZboxParams p = ZboxParams::ev7();
    Zbox z(ctx, p);
    Tick start = ctx.now();
    for (int i = 0; i < 8; ++i)
        z.read(static_cast<Addr>(i) * 2 * lineBytes, [] {});
    ctx.queue().runUntil();
    // 8 bursts over 4 channels in a window of ~2 bursts: ~100%.
    double u = z.utilization(start, ctx.now());
    EXPECT_GT(u, 0.5);
    EXPECT_LE(u, 1.0);
    z.clearStats();
    EXPECT_EQ(z.stats().reads, 0u);
}

TEST(Zbox, WritesCountSeparately)
{
    SimContext ctx;
    Zbox z(ctx, ZboxParams::ev7());
    z.write(0);
    z.read(128, [] {});
    ctx.queue().runUntil();
    EXPECT_EQ(z.stats().writes, 1u);
    EXPECT_EQ(z.stats().reads, 1u);
}

} // namespace

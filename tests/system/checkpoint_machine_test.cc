/**
 * @file
 * Machine-level checkpoint/restore: the A/B determinism contract
 * (run N ticks, save, run M more == save + restore + run M, for the
 * serial and parallel engines alike), rejection of corrupt or
 * mismatched snapshots with actionable errors, and watchdog-driven
 * crash recovery (rollback to a snapshot, heal, complete; or exhaust
 * the retry budget and die loudly).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/injector.hh"
#include "sim/random.hh"
#include "sim/telemetry.hh"
#include "system/machine.hh"
#include "workload/load_test.hh"
#include "workload/pointer_chase.hh"

namespace
{

using namespace gs;

std::string
tmpPrefix(const std::string &name)
{
    return testing::TempDir() + name;
}

/** A machine plus identically-rebuildable workload. */
struct Rig
{
    std::unique_ptr<sys::Machine> m;
    std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
};

Rig
makeRig(int cpus, int threads, std::uint64_t seed, std::uint64_t reads,
        TileShape tiles = {0, 0})
{
    Rig r;
    sys::Gs1280Options opt;
    opt.seed = seed;
    opt.threads = threads;
    opt.tileRows = tiles.rows;
    opt.tileCols = tiles.cols;
    r.m = sys::Machine::buildGS1280(cpus, opt);
    for (int c = 0; c < cpus; ++c) {
        r.gens.push_back(std::make_unique<wl::RandomRemoteReads>(
            static_cast<NodeId>(c), cpus, 8ULL << 20, reads,
            Rng::deriveSeed(seed, static_cast<std::uint64_t>(c))));
        r.sources.push_back(r.gens.back().get());
    }
    return r;
}

std::string
exportOf(const sys::Machine &m)
{
    std::ostringstream os;
    telem::exportJson(os, m.telemetry());
    return os.str();
}

/**
 * The contract, one engine configuration at a time: a run that
 * checkpoints periodically must be continuable from EVERY snapshot
 * it wrote, with final exports byte-identical to its own.
 */
void
checkContract(int cpus, int saveThreads, int restoreThreads,
              std::uint64_t seed, std::uint64_t reads,
              const std::string &tag, TileShape tiles = {0, 0})
{
    // Probe run: learn the workload's natural length.
    Rig probe = makeRig(cpus, saveThreads, seed, reads, tiles);
    ASSERT_TRUE(probe.m->run(probe.sources));
    const Tick endTick = probe.m->ctx().now();
    ASSERT_GT(endTick, 0u);
    const Tick every = endTick / 3;

    // Reference: uninterrupted, but checkpointing as it goes (the
    // ckpt.* counters are part of the export, so the continued run
    // must checkpoint on the same schedule to converge).
    const std::string prefixA = tmpPrefix("ckpt_ab_a_" + tag);
    Rig a = makeRig(cpus, saveThreads, seed, reads, tiles);
    a.m->setCheckpointPolicy(every, prefixA);
    ASSERT_TRUE(a.m->run(a.sources));
    const std::string wantExport = exportOf(*a.m);
    const std::uint64_t snaps = a.m->checkpointSaves();
    ASSERT_GE(snaps, 2u) << "expected multiple periodic snapshots";

    for (std::uint64_t k = 1; k <= snaps; ++k) {
        SCOPED_TRACE(tag + " snapshot " + std::to_string(k));
        const std::string snap =
            prefixA + "." + std::to_string(k) + ".gsckpt";
        const std::string prefixB =
            tmpPrefix("ckpt_ab_b_" + tag + "_" + std::to_string(k));
        Rig b = makeRig(cpus, restoreThreads, seed, reads, tiles);
        b.m->setCheckpointPolicy(every, prefixB);
        std::string err;
        ASSERT_TRUE(b.m->restore(snap, b.sources, &err)) << err;
        ASSERT_TRUE(b.m->run(b.sources));
        EXPECT_EQ(exportOf(*b.m), wantExport)
            << "restored run diverged from the uninterrupted one";
        EXPECT_EQ(b.m->checkpointRestores(), 1u);
        for (std::uint64_t n = 1; n <= b.m->checkpointSaves(); ++n)
            std::remove((prefixB + "." + std::to_string(n) + ".gsckpt")
                            .c_str());
    }
    for (std::uint64_t n = 1; n <= snaps; ++n)
        std::remove(
            (prefixA + "." + std::to_string(n) + ".gsckpt").c_str());
}

TEST(CheckpointMachine, ContractSerialAcrossSeeds)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        checkContract(8, 1, 1, seed, 80,
                      "serial_s" + std::to_string(seed));
    }
}

TEST(CheckpointMachine, ContractParallelAcrossSeeds)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        checkContract(16, 4, 4, seed, 60,
                      "par_s" + std::to_string(seed));
    }
}

TEST(CheckpointMachine, ParallelSnapshotRestoresAtAnyThreadCount)
{
    // Domains are fixed by the tile shape, not the worker count: a
    // snapshot saved at --threads 2 continues at --threads 8 when
    // both runs pin the same decomposition (the auto shape tracks
    // --threads, so cross-thread-count restores must pin one).
    checkContract(16, 2, 8, 5, 60, "par_threads", {2, 2});
}

TEST(CheckpointMachine, TileShapeSnapshotContractAtEightThreads)
{
    // The tile engine at full thread count with a non-default shape
    // (auto would pick 2x4 for 8 threads on the 4x4 torus): every
    // mid-run snapshot must continue byte-identically, adaptive
    // lookahead state and all.
    checkContract(16, 8, 8, 11, 60, "tile_4x2", {4, 2});
}

TEST(CheckpointMachine, RestoreRejectsTileShapeMismatch)
{
    // Same domain COUNT on both sides (so the layout check passes)
    // but a transposed decomposition: the tile-shape fields must
    // reject it — a 2x2-tiled event stream replayed onto 4x1 tiles
    // would be silently wrong.
    Rig a = makeRig(16, 4, 3, 40, {2, 2});
    ASSERT_TRUE(a.m->run(a.sources));
    const std::string snap = tmpPrefix("ckpt_tileshape.gsckpt");
    std::string err;
    ASSERT_TRUE(a.m->save(snap, &err)) << err;

    Rig b = makeRig(16, 4, 3, 40, {4, 1});
    EXPECT_FALSE(b.m->restore(snap, b.sources, &err));
    EXPECT_NE(err.find("tile"), std::string::npos) << err;
    std::remove(snap.c_str());
}

TEST(CheckpointMachine, SaveWritesRestorableFileOutsideRun)
{
    // Manual save/restore (no periodic policy): save mid-run is the
    // normal path, but a quiesced machine saves too.
    Rig a = makeRig(4, 1, 9, 40);
    ASSERT_TRUE(a.m->run(a.sources));
    const std::string snap = tmpPrefix("ckpt_manual.gsckpt");
    std::string err;
    ASSERT_TRUE(a.m->save(snap, &err)) << err;

    Rig b = makeRig(4, 1, 9, 40);
    ASSERT_TRUE(b.m->restore(snap, b.sources, &err)) << err;
    // Everything already finished; the continued run is a no-op and
    // the exports match.
    ASSERT_TRUE(b.m->run(b.sources));
    // ckpt.saves differs (a saved once, b did not), so compare a
    // representative set of simulation counters instead.
    for (const char *path :
         {"net.injected_packets", "net.delivered_packets", "eq.fired",
          "net.latency_ns"}) {
        SCOPED_TRACE(path);
        EXPECT_EQ(b.m->telemetry().value(path),
                  a.m->telemetry().value(path));
    }
    std::remove(snap.c_str());
}

TEST(CheckpointMachine, RestoreRejectsBitFlippedSnapshot)
{
    Rig a = makeRig(4, 1, 2, 40);
    ASSERT_TRUE(a.m->run(a.sources));
    const std::string snap = tmpPrefix("ckpt_flip.gsckpt");
    std::string err;
    ASSERT_TRUE(a.m->save(snap, &err)) << err;

    {
        std::fstream f(snap,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(0, std::ios::end);
        // Mid-file: deep inside some section, wherever the layout
        // puts it — a tag byte and a payload byte must both reject.
        const std::streamoff at =
            static_cast<std::streamoff>(f.tellg()) / 2;
        f.seekg(at);
        char b = 0;
        f.read(&b, 1);
        b = static_cast<char>(b ^ 0x40);
        f.seekp(at);
        f.write(&b, 1);
    }

    Rig b = makeRig(4, 1, 2, 40);
    EXPECT_FALSE(b.m->restore(snap, b.sources, &err));
    // A payload flip fails the section CRC; a flip that happens to
    // land on a section tag fails the layout walk. Either way the
    // snapshot must be rejected with a diagnosis, never half-loaded.
    EXPECT_TRUE(err.find("CRC mismatch") != std::string::npos ||
                err.find("layout error") != std::string::npos)
        << err;
    std::remove(snap.c_str());
}

TEST(CheckpointMachine, RestoreRejectsTruncatedSnapshot)
{
    Rig a = makeRig(4, 1, 2, 40);
    ASSERT_TRUE(a.m->run(a.sources));
    const std::string snap = tmpPrefix("ckpt_trunc.gsckpt");
    std::string err;
    ASSERT_TRUE(a.m->save(snap, &err)) << err;
    {
        std::vector<char> bytes;
        {
            std::ifstream f(snap, std::ios::binary);
            bytes.assign(std::istreambuf_iterator<char>(f),
                         std::istreambuf_iterator<char>());
        }
        std::ofstream f(snap, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size() / 2));
    }

    Rig b = makeRig(4, 1, 2, 40);
    EXPECT_FALSE(b.m->restore(snap, b.sources, &err));
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;
    std::remove(snap.c_str());
}

TEST(CheckpointMachine, RestoreRejectsMismatchedBuild)
{
    Rig a = makeRig(4, 1, 2, 40);
    ASSERT_TRUE(a.m->run(a.sources));
    const std::string snap = tmpPrefix("ckpt_mismatch.gsckpt");
    std::string err;
    ASSERT_TRUE(a.m->save(snap, &err)) << err;

    {
        // Different seed.
        Rig b = makeRig(4, 1, 3, 40);
        EXPECT_FALSE(b.m->restore(snap, b.sources, &err));
        EXPECT_NE(err.find("seed"), std::string::npos) << err;
    }
    {
        // Different CPU count.
        Rig b = makeRig(8, 1, 2, 40);
        EXPECT_FALSE(b.m->restore(snap, b.sources, &err));
        EXPECT_NE(err.find("mismatch"), std::string::npos) << err;
    }
    {
        // Serial snapshot into a parallel machine.
        Rig b = makeRig(4, 2, 2, 40);
        if (b.m->isParallel()) {
            EXPECT_FALSE(b.m->restore(snap, b.sources, &err));
            EXPECT_NE(err.find("domain"), std::string::npos) << err;
        }
    }
    {
        // Wrong workload set.
        Rig b = makeRig(4, 1, 2, 40);
        std::vector<cpu::TrafficSource *> tooFew(
            b.sources.begin(), b.sources.begin() + 2);
        EXPECT_FALSE(b.m->restore(snap, tooFew, &err));
        EXPECT_NE(err.find("traffic sources"), std::string::npos)
            << err;
    }
    std::remove(snap.c_str());
}

TEST(CheckpointMachine, WatchdogRollbackRecoversWedgedRun)
{
    // CPU 0 chases pointers in node 3's memory; node 3 dies at 5 us,
    // wedging every outstanding miss. The watchdog's coherence probe
    // trips, the machine rolls back to the 4 us snapshot with fault
    // healing on, and the run completes as if the fault never fired.
    auto m = sys::Machine::buildGS1280(4);

    fault::WatchdogConfig cfg;
    cfg.checkCycles = 500;
    m->armWatchdog(cfg, /*coherenceTimeoutNs=*/20000.0);

    fault::FaultPlan plan;
    plan.nodeDown(5 * tickUs, 3);
    m->faults().schedule(plan);

    const std::string prefix = tmpPrefix("ckpt_rollback");
    m->setCheckpointPolicy(4 * tickUs, prefix);
    sys::Machine::RollbackPolicy rb;
    rb.snapshotPath = prefix + ".1.gsckpt";
    rb.maxRetries = 3;
    rb.healFaults = true;
    m->setRollbackPolicy(rb);

    wl::PointerChase chase(m->cpuAddr(3, 0), 1 << 20, 64, 800);
    EXPECT_TRUE(m->run({&chase}));
    EXPECT_EQ(m->checkpointRollbacks(), 1u);
    EXPECT_EQ(m->checkpointRestores(), 1u);
    EXPECT_TRUE(m->faults().faultsSuppressed());
    EXPECT_GT(m->telemetry().value("ckpt.rollbacks"), 0.0);

    for (std::uint64_t n = 1; n <= m->checkpointSaves() + 2; ++n)
        std::remove(
            (prefix + "." + std::to_string(n) + ".gsckpt").c_str());
}

TEST(CheckpointMachine, RollbackRetryBudgetExhaustedDiesLoudly)
{
    // healFaults off: the restored run re-applies the same fault and
    // wedges again; after maxRetries rollbacks the machine must
    // hard-fail with the diagnostic rather than loop forever.
    auto runIt = [] {
        auto m = sys::Machine::buildGS1280(4);
        fault::WatchdogConfig cfg;
        cfg.checkCycles = 500;
        m->armWatchdog(cfg, /*coherenceTimeoutNs=*/20000.0);
        fault::FaultPlan plan;
        plan.nodeDown(5 * tickUs, 3);
        m->faults().schedule(plan);
        const std::string prefix =
            tmpPrefix("ckpt_rollback_exhaust");
        m->setCheckpointPolicy(4 * tickUs, prefix);
        sys::Machine::RollbackPolicy rb;
        rb.snapshotPath = prefix + ".1.gsckpt";
        rb.maxRetries = 1;
        rb.healFaults = false;
        m->setRollbackPolicy(rb);
        wl::PointerChase chase(m->cpuAddr(3, 0), 1 << 20, 64, 800);
        m->run({&chase});
    };
    EXPECT_EXIT(runIt(), ::testing::ExitedWithCode(1),
                "retry budget exhausted");
}

} // namespace

/** @file Xmesh CSV export test. */

#include <gtest/gtest.h>

#include <sstream>

#include "system/xmesh.hh"
#include "workload/stream.hh"

namespace
{

using namespace gs;
using namespace gs::sys;

TEST(XmeshCsv, DumpsHeaderAndSamples)
{
    auto m = Machine::buildGS1280(4);
    Xmesh mon(*m, 20 * tickUs);
    mon.start();
    wl::StreamTriad triad(m->cpuAddr(0, 0), 2 << 20);
    ASSERT_TRUE(m->run({&triad}));
    mon.stop();

    std::ostringstream os;
    mon.dumpCsv(os);
    std::string csv = os.str();

    // Header names every node's memory column.
    EXPECT_NE(csv.find("timestamp_us,avg_mem,avg_link,avg_ew,avg_ns,"
                       "mem0,mem1,mem2,mem3"),
              std::string::npos);

    // One line per sample plus the header.
    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, mon.samples().size() + 1);

    // Every row has the same number of commas as the header.
    std::istringstream rows(csv);
    std::string header, row;
    std::getline(rows, header);
    auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    while (std::getline(rows, row))
        EXPECT_EQ(commas(row), commas(header));
}

TEST(XmeshCsv, EmptyLogIsJustHeader)
{
    auto m = Machine::buildGS1280(4);
    Xmesh mon(*m, 20 * tickUs);
    std::ostringstream os;
    mon.dumpCsv(os);
    std::size_t lines = 0;
    for (char c : os.str())
        lines += c == '\n';
    EXPECT_EQ(lines, 1u);
}

} // namespace

/** @file I/O DMA stream tests (IO packet class, pacing, class
 *  separation from coherence traffic). */

#include <gtest/gtest.h>

#include <memory>

#include "system/io.hh"
#include "system/machine.hh"
#include "workload/stream.hh"

namespace
{

using namespace gs;
using namespace gs::sys;

TEST(IoDma, DeliversEveryPacket)
{
    auto m = Machine::buildGS1280(4);
    IoDma dma(m->network(), 0, 3, IoDmaParams{64 * 1024, 3.1, 64});
    dma.attachSink(m->node(3));

    bool done = false;
    dma.start([&] { done = true; });
    m->ctx().queue().runUntil(m->ctx().now() + 50 * tickMs);

    EXPECT_TRUE(done);
    EXPECT_TRUE(dma.done());
    EXPECT_EQ(dma.packetsDelivered(), 1024u);
    EXPECT_EQ(m->node(3).ioPacketsReceived(), 1024u);
}

TEST(IoDma, PacedNearThePortRate)
{
    auto m = Machine::buildGS1280(4);
    IoDmaParams p;
    p.totalBytes = 1 << 20;
    p.rateGBs = 3.1;
    IoDma dma(m->network(), 0, 1, p);
    dma.attachSink(m->node(1));
    dma.start(nullptr);
    m->ctx().queue().runUntil(m->ctx().now() + 50 * tickMs);

    ASSERT_TRUE(dma.done());
    // Delivered bandwidth approaches the device pacing but cannot
    // exceed the 3.1 GB/s link.
    EXPECT_GT(dma.deliveredGBs(), 2.2);
    EXPECT_LT(dma.deliveredGBs(), 3.2);
}

TEST(IoDma, SlowDeviceIsDevicePaced)
{
    auto m = Machine::buildGS1280(4);
    IoDmaParams p;
    p.totalBytes = 256 * 1024;
    p.rateGBs = 0.5;
    IoDma dma(m->network(), 0, 1, p);
    dma.attachSink(m->node(1));
    dma.start(nullptr);
    m->ctx().queue().runUntil(m->ctx().now() + 50 * tickMs);
    ASSERT_TRUE(dma.done());
    EXPECT_NEAR(dma.deliveredGBs(), 0.5, 0.1);
}

TEST(IoDma, UnsunkIoPacketsAreCounted)
{
    auto m = Machine::buildGS1280(4);
    IoDma dma(m->network(), 2, 1, IoDmaParams{4096, 3.1, 64});
    dma.start(nullptr); // no sink attached
    m->ctx().queue().runUntil(m->ctx().now() + 10 * tickMs);
    EXPECT_EQ(m->node(1).ioPacketsReceived(), 64u);
    EXPECT_FALSE(dma.done()); // nobody told the stream
}

TEST(IoDma, CoherentTrafficSurvivesIoFlood)
{
    // Class separation: a saturating IO stream across the fabric
    // must not starve coherence traffic (distinct VC classes).
    auto m = Machine::buildGS1280(8);

    IoDmaParams p;
    p.totalBytes = 4 << 20;
    p.rateGBs = 3.1;
    IoDma dma(m->network(), 0, 7, p);
    dma.attachSink(m->node(7));
    dma.start(nullptr);

    wl::StreamTriad triad(m->cpuAddr(1, 0), 2 << 20);
    std::vector<cpu::TrafficSource *> sources{nullptr, &triad};
    EXPECT_TRUE(m->run(sources, 2000 * tickMs));
    double gbs = static_cast<double>(triad.linesProcessed()) * 192.0 /
                 m->core(1).stats().elapsedNs();
    EXPECT_GT(gbs, 3.0); // barely perturbed (local memory)
}

TEST(IoDma, Gs320IoIsSlower)
{
    // The Figure 28 I/O row: GS320's shared risers deliver a
    // fraction of the GS1280's per-port bandwidth.
    auto a = Machine::buildGS1280(8);
    IoDma dmaA(a->network(), 0, 5, IoDmaParams{1 << 20, 3.1, 64});
    dmaA.attachSink(a->node(5));
    dmaA.start(nullptr);
    a->ctx().queue().runUntil(a->ctx().now() + 50 * tickMs);
    ASSERT_TRUE(dmaA.done());

    auto b = Machine::buildGS320(8);
    IoDma dmaB(b->network(), 0, 5, IoDmaParams{1 << 20, 3.1, 64});
    dmaB.attachSink(b->node(5));
    dmaB.start(nullptr);
    b->ctx().queue().runUntil(b->ctx().now() + 200 * tickMs);
    ASSERT_TRUE(dmaB.done());

    EXPECT_GT(dmaA.deliveredGBs(), 1.5 * dmaB.deliveredGBs());
}

} // namespace

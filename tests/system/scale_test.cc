/**
 * @file
 * Memory-lean scale-out tests (docs/SCALING.md): 3-D GS1280 builds
 * up to 2048 nodes, the >= 4x bytes/node reduction of the lazy /
 * packed layouts, coarse directory sharer vectors past 64 nodes,
 * thread-count invariance of a 3-D GUPS run under the tile engine,
 * telemetry's lite mode, and snapshot compatibility (3-D round-trip
 * plus rejection of cross-topology restores).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "coherence/checker.hh"
#include "sim/random.hh"
#include "system/machine.hh"
#include "workload/gups.hh"
#include "workload/load_test.hh"

namespace
{

using namespace gs;
using namespace gs::sys;

TEST(Scale3D, BuildGeometryAndBuddies)
{
    auto m = Machine::buildGS1280_3D(4, 2, 2);
    EXPECT_EQ(m->cpuCount(), 16);
    EXPECT_EQ(m->nodeCount(), 16);
    EXPECT_EQ(m->topology().name(), "torus 4x2x2");
    for (NodeId n = 0; n < 16; ++n) {
        ASSERT_TRUE(m->hasNode(n));
        EXPECT_TRUE(m->node(n).hasCache());
        EXPECT_TRUE(m->node(n).hasMemory());
    }
    // 3-D module buddies pair adjacent slabs and are involutive.
    for (NodeId n = 0; n < 16; ++n) {
        NodeId b = m->moduleBuddy(n);
        EXPECT_NE(b, n);
        EXPECT_EQ(m->moduleBuddy(b), n);
    }
    EXPECT_EQ(m->moduleBuddy(0), 8); // (0,0,0) <-> (0,0,1)
}

TEST(Scale3D, StripedMapUsesSlabBuddies)
{
    Gs1280Options opt;
    opt.striped = true;
    auto m = Machine::buildGS1280_3D(2, 2, 2, opt);
    const auto &map = m->addressMap();
    mem::Addr base = m->cpuAddr(0, 0);
    EXPECT_EQ(map.home(base + 0 * 64).node, 0);
    EXPECT_EQ(map.home(base + 2 * 64).node, m->moduleBuddy(0));
}

TEST(Scale3D, TelemetryGoesLitePastSixtyFourNodes)
{
    // 64 nodes: full per-node subtrees, exactly as shipped.
    auto small = Machine::buildGS1280_3D(4, 4, 4);
    EXPECT_FALSE(small->telemetry().paths("node.").empty());
    EXPECT_EQ(small->telemetry().value("mem.sharer_group"), 1.0);

    // 128 nodes: aggregates only; registry size stays flat.
    auto big = Machine::buildGS1280_3D(8, 4, 4);
    EXPECT_TRUE(big->telemetry().paths("node.").empty());
    EXPECT_FALSE(big->telemetry().paths("net.").empty());
    EXPECT_EQ(big->telemetry().value("mem.sharer_group"), 2.0);
    EXPECT_LT(big->telemetry().size(), small->telemetry().size());
}

TEST(Scale3D, CoarseSharersKeepCoherence)
{
    // 128 nodes -> sharer groups of 2: spurious invalidations are
    // allowed, protocol correctness is not negotiable.
    auto m = Machine::buildGS1280_3D(8, 4, 4);
    std::vector<std::unique_ptr<wl::RandomRemoteReads>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < 8; ++c) {
        gens.push_back(std::make_unique<wl::RandomRemoteReads>(
            static_cast<NodeId>(c), m->cpuCount(), 8ULL << 20, 200,
            Rng::deriveSeed(7, static_cast<std::uint64_t>(c))));
        sources.push_back(gens.back().get());
    }
    ASSERT_TRUE(m->run(sources));
    std::vector<coher::CoherentNode *> nodes;
    for (NodeId n = 0; n < m->nodeCount(); ++n)
        nodes.push_back(&m->node(n));
    EXPECT_TRUE(coher::verifyCoherence(nodes).ok);
}

// ------------------------------------------------------------------
// Thread-count invariance on the 3-D tile engine.
// ------------------------------------------------------------------

struct GupsResult
{
    bool completed = false;
    std::vector<std::uint64_t> updates;
    std::vector<double> coreElapsedNs;
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    double latMin = 0, latMax = 0;
};

GupsResult
runGups3D(int x, int y, int z, int threads, TileShape tiles,
          std::uint64_t updates)
{
    Gs1280Options opt;
    opt.seed = 3;
    opt.threads = threads;
    opt.tileRows = tiles.rows;
    opt.tileCols = tiles.cols;
    opt.tileSlabs = tiles.slabs;
    auto m = Machine::buildGS1280_3D(x, y, z, opt);

    const int cpus = m->cpuCount();
    std::vector<std::unique_ptr<wl::Gups>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < cpus; ++c) {
        gens.push_back(std::make_unique<wl::Gups>(
            cpus, 1ULL << 20, updates,
            Rng::deriveSeed(3, static_cast<std::uint64_t>(c))));
        sources.push_back(gens.back().get());
    }

    GupsResult r;
    r.completed = m->run(sources);
    for (int c = 0; c < cpus; ++c) {
        r.updates.push_back(gens[std::size_t(c)]->updatesIssued());
        r.coreElapsedNs.push_back(m->core(c).stats().elapsedNs());
    }
    const auto &st = m->network().stats();
    r.injected = st.injectedPackets;
    r.delivered = st.deliveredPackets;
    r.latMin = st.latencyNs.min();
    r.latMax = st.latencyNs.max();
    return r;
}

TEST(Scale3D, GupsIsThreadCountInvariant)
{
    // 4x4x2 = 32 nodes, fixed 2x2x2 tiling: the schedule is pinned
    // by the shape, so every statistic must be bitwise identical at
    // any worker count, and match the serial engine.
    const TileShape tiles{2, 2, 2};
    GupsResult serial = runGups3D(4, 4, 2, 1, {0, 0, 0}, 40);
    GupsResult par2 = runGups3D(4, 4, 2, 2, tiles, 40);
    GupsResult par8 = runGups3D(4, 4, 2, 8, tiles, 40);

    ASSERT_TRUE(serial.completed);
    ASSERT_TRUE(par2.completed);
    ASSERT_TRUE(par8.completed);

    // Parallel vs parallel: identical engine decomposition.
    EXPECT_EQ(par2.updates, par8.updates);
    EXPECT_EQ(par2.coreElapsedNs, par8.coreElapsedNs);
    EXPECT_EQ(par2.injected, par8.injected);
    EXPECT_EQ(par2.delivered, par8.delivered);
    EXPECT_EQ(par2.latMin, par8.latMin);
    EXPECT_EQ(par2.latMax, par8.latMax);

    // Serial vs parallel: same simulated execution.
    EXPECT_EQ(serial.updates, par2.updates);
    EXPECT_EQ(serial.coreElapsedNs, par2.coreElapsedNs);
    EXPECT_EQ(serial.injected, par2.injected);
    EXPECT_EQ(serial.delivered, par2.delivered);
    EXPECT_EQ(serial.latMin, par2.latMin);
    EXPECT_EQ(serial.latMax, par2.latMax);
}

TEST(Scale3D, TwoThousandNodeGupsIsThreadCountInvariant)
{
    // The acceptance machine itself: 16x16x8 GUPS under a pinned
    // 2x2x2 tiling, byte-equal statistics at 1, 2 and 8 workers.
    const TileShape tiles{2, 2, 2};
    GupsResult t1 = runGups3D(16, 16, 8, 1, tiles, 4);
    GupsResult t2 = runGups3D(16, 16, 8, 2, tiles, 4);
    GupsResult t8 = runGups3D(16, 16, 8, 8, tiles, 4);

    ASSERT_TRUE(t1.completed);
    ASSERT_TRUE(t2.completed);
    ASSERT_TRUE(t8.completed);
    EXPECT_EQ(t1.updates, t2.updates);
    EXPECT_EQ(t1.updates, t8.updates);
    EXPECT_EQ(t1.coreElapsedNs, t2.coreElapsedNs);
    EXPECT_EQ(t1.coreElapsedNs, t8.coreElapsedNs);
    EXPECT_EQ(t1.injected, t2.injected);
    EXPECT_EQ(t1.injected, t8.injected);
    EXPECT_EQ(t1.delivered, t8.delivered);
    EXPECT_EQ(t1.latMin, t8.latMin);
    EXPECT_EQ(t1.latMax, t8.latMax);
}

// ------------------------------------------------------------------
// Memory budget: the 2048-node acceptance machine.
// ------------------------------------------------------------------

TEST(Scale3D, TwoThousandNodeMachineStaysMemoryLean)
{
    auto m = Machine::buildGS1280_3D(16, 16, 8);
    EXPECT_EQ(m->nodeCount(), 2048);
    EXPECT_EQ(m->telemetry().value("mem.sharer_group"), 32.0);

    // Untouched machine: everything lazy, nothing allocated.
    const std::size_t before = m->memFootprintBytes();
    const std::size_t dense = m->denseMemFootprintBytes();
    ASSERT_GT(before, 0u);
    EXPECT_GE(static_cast<double>(dense) /
                  static_cast<double>(before),
              4.0)
        << "bytes/node: lazy " << before / 2048 << ", dense "
        << dense / 2048;

    // Drive traffic through a corner of the machine; the footprint
    // grows with the touched set, not the machine size, so the
    // reduction must survive a real run.
    std::vector<std::unique_ptr<wl::Gups>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < 16; ++c) {
        gens.push_back(std::make_unique<wl::Gups>(
            m->cpuCount(), 64ULL << 10, 25,
            Rng::deriveSeed(5, static_cast<std::uint64_t>(c))));
        sources.push_back(gens.back().get());
    }
    ASSERT_TRUE(m->run(sources));
    const std::size_t after = m->memFootprintBytes();
    EXPECT_GT(after, before);
    EXPECT_GE(static_cast<double>(m->denseMemFootprintBytes()) /
                  static_cast<double>(after),
              4.0)
        << "bytes/node after GUPS: " << after / 2048;
}

// ------------------------------------------------------------------
// Snapshot contract: 3-D round-trip, cross-topology rejection.
// ------------------------------------------------------------------

TEST(Scale3D, CheckpointRoundTripsOn3DMachines)
{
    auto makeRig = [](int threads) {
        struct Rig
        {
            std::unique_ptr<Machine> m;
            std::vector<std::unique_ptr<wl::Gups>> gens;
            std::vector<cpu::TrafficSource *> sources;
        };
        Rig r;
        Gs1280Options opt;
        opt.seed = 11;
        opt.threads = threads;
        r.m = Machine::buildGS1280_3D(2, 2, 2, opt);
        for (int c = 0; c < 8; ++c) {
            r.gens.push_back(std::make_unique<wl::Gups>(
                8, 1ULL << 20, 60,
                Rng::deriveSeed(11, static_cast<std::uint64_t>(c))));
            r.sources.push_back(r.gens.back().get());
        }
        return r;
    };

    // Reference run, snapshotting as it goes.
    auto a = makeRig(1);
    const std::string prefix = testing::TempDir() + "scale3d_ab";
    auto probe = makeRig(1);
    ASSERT_TRUE(probe.m->run(probe.sources));
    const Tick endTick = probe.m->ctx().now();
    a.m->setCheckpointPolicy(endTick / 2, prefix);
    ASSERT_TRUE(a.m->run(a.sources));
    ASSERT_GE(a.m->checkpointSaves(), 1u);
    const std::string snap = prefix + ".1.gsckpt";

    // Restore into an identical 3-D build and finish: workload
    // totals converge with the uninterrupted run.
    auto b = makeRig(1);
    b.m->setCheckpointPolicy(endTick / 2,
                             testing::TempDir() + "scale3d_b");
    std::string err;
    ASSERT_TRUE(b.m->restore(snap, b.sources, &err)) << err;
    ASSERT_TRUE(b.m->run(b.sources));
    EXPECT_EQ(b.m->ctx().now(), a.m->ctx().now());
    for (int c = 0; c < 8; ++c)
        EXPECT_EQ(b.gens[std::size_t(c)]->updatesIssued(),
                  a.gens[std::size_t(c)]->updatesIssued());

    // A 2-D machine of the same CPU count must refuse the snapshot
    // with an actionable mismatch error, not corrupt itself.
    auto c2d = makeRig(1);
    c2d.m = Machine::buildGS1280(8, [] {
        Gs1280Options o;
        o.seed = 11;
        return o;
    }());
    std::string rerr;
    EXPECT_FALSE(c2d.m->restore(snap, c2d.sources, &rerr));
    EXPECT_NE(rerr.find("mismatch"), std::string::npos) << rerr;

    std::remove(snap.c_str());
    for (std::uint64_t n = 1; n <= b.m->checkpointSaves(); ++n)
        std::remove((testing::TempDir() + "scale3d_b." +
                     std::to_string(n) + ".gsckpt")
                        .c_str());
}

} // namespace

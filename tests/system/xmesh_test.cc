/** @file Xmesh monitor tests. */

#include <gtest/gtest.h>

#include <memory>

#include "system/xmesh.hh"
#include "workload/load_test.hh"
#include "workload/stream.hh"

namespace
{

using namespace gs;
using namespace gs::sys;

TEST(Xmesh, SamplesAccumulateWhileRunning)
{
    auto m = Machine::buildGS1280(4);
    Xmesh mon(*m, 20 * tickUs);
    mon.start();

    wl::StreamTriad triad(m->cpuAddr(0, 0), 2 << 20);
    ASSERT_TRUE(m->run({&triad}));
    mon.stop();

    ASSERT_GT(mon.samples().size(), 2u);
    // Node 0 streamed from its own memory: its MC utilization must
    // show up; an idle node's must not.
    bool sawBusy = false;
    for (const auto &s : mon.samples()) {
        EXPECT_EQ(s.memUtil.size(), 4u);
        sawBusy = sawBusy || s.memUtil[0] > 0.05;
        EXPECT_LT(s.memUtil[3], 0.02);
    }
    EXPECT_TRUE(sawBusy);
}

TEST(Xmesh, LinkUtilizationSeenUnderRemoteTraffic)
{
    auto m = Machine::buildGS1280(4);
    Xmesh mon(*m, 20 * tickUs);
    mon.start();

    std::vector<std::unique_ptr<wl::RandomRemoteReads>> gen;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < 4; ++c) {
        gen.push_back(std::make_unique<wl::RandomRemoteReads>(
            c, 4, 64 << 20, 3000, 10 + static_cast<unsigned>(c)));
        sources.push_back(gen.back().get());
    }
    ASSERT_TRUE(m->run(sources));
    mon.stop();

    double peakLink = 0;
    for (const auto &s : mon.samples())
        peakLink = std::max(peakLink, s.avgLinkUtil);
    EXPECT_GT(peakLink, 0.02);
}

TEST(Xmesh, UtilizationsAreBounded)
{
    auto m = Machine::buildGS1280(4);
    Xmesh mon(*m, 10 * tickUs);
    mon.start();
    wl::StreamTriad triad(m->cpuAddr(1, 0), 1 << 20);
    std::vector<cpu::TrafficSource *> sources{nullptr, &triad};
    ASSERT_TRUE(m->run(sources));
    mon.stop();
    for (const auto &s : mon.samples()) {
        for (double u : s.memUtil) {
            EXPECT_GE(u, 0.0);
            EXPECT_LE(u, 1.0);
        }
        EXPECT_GE(s.avgEastWest, 0.0);
        EXPECT_LE(s.avgNorthSouth, 1.0);
    }
}

TEST(Xmesh, HeatmapRendersGrid)
{
    auto m = Machine::buildGS1280(4);
    Xmesh mon(*m, 10 * tickUs);
    auto sample = mon.sampleNow();
    std::string map = mon.heatmap(sample);
    EXPECT_NE(map.find("Xmesh"), std::string::npos);
    // 2x2 grid: two rows with two cells each.
    EXPECT_NE(map.find("[  0.0 ]"), std::string::npos);
}

TEST(Xmesh, HotSpotShowsOnVictimNode)
{
    auto m = Machine::buildGS1280(8);
    Xmesh mon(*m, 50 * tickUs);
    mon.start();

    std::vector<std::unique_ptr<wl::HotSpotReads>> gen;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < 8; ++c) {
        gen.push_back(std::make_unique<wl::HotSpotReads>(
            0, 64 << 20, 1500, 20 + static_cast<unsigned>(c)));
        sources.push_back(gen.back().get());
    }
    ASSERT_TRUE(m->run(sources));
    mon.stop();

    // Victim node's memory controllers are the hottest in at least
    // one sample.
    double victimPeak = 0, otherPeak = 0;
    for (const auto &s : mon.samples()) {
        victimPeak = std::max(victimPeak, s.memUtil[0]);
        for (int n = 1; n < 8; ++n)
            otherPeak = std::max(otherPeak,
                                 s.memUtil[static_cast<std::size_t>(n)]);
    }
    EXPECT_GT(victimPeak, 0.2);
    EXPECT_GT(victimPeak, 4.0 * otherPeak);
}

} // namespace

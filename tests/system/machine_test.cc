/** @file Machine assembly tests for the three systems. */

#include <gtest/gtest.h>

#include "coherence/checker.hh"
#include "system/machine.hh"
#include "workload/pointer_chase.hh"

namespace
{

using namespace gs;
using namespace gs::sys;

TEST(TorusShapeFn, ShippedShapes)
{
    EXPECT_EQ(torusShape(1), (std::pair{1, 1}));
    EXPECT_EQ(torusShape(4), (std::pair{2, 2}));
    EXPECT_EQ(torusShape(8), (std::pair{4, 2}));
    EXPECT_EQ(torusShape(12), (std::pair{4, 3}));
    EXPECT_EQ(torusShape(16), (std::pair{4, 4}));
    EXPECT_EQ(torusShape(32), (std::pair{8, 4}));
    EXPECT_EQ(torusShape(64), (std::pair{8, 8}));
}

TEST(MachineGs1280, BuildsAllNodes)
{
    auto m = Machine::buildGS1280(16);
    EXPECT_EQ(m->cpuCount(), 16);
    EXPECT_EQ(m->nodeCount(), 16);
    EXPECT_EQ(m->kind(), SystemKind::GS1280);
    for (NodeId n = 0; n < 16; ++n) {
        ASSERT_TRUE(m->hasNode(n));
        EXPECT_TRUE(m->node(n).hasCache());
        EXPECT_TRUE(m->node(n).hasMemory());
        EXPECT_EQ(m->node(n).zboxCount(), 2);
    }
}

TEST(MachineGs1280, ModuleBuddiesPairRows)
{
    auto m = Machine::buildGS1280(16); // 4x4
    // (x,0) pairs with (x,1); buddy is involutive.
    for (NodeId n = 0; n < 16; ++n) {
        NodeId b = m->moduleBuddy(n);
        EXPECT_NE(b, n);
        EXPECT_EQ(m->moduleBuddy(b), n);
    }
    EXPECT_EQ(m->moduleBuddy(0), 4); // (0,0) <-> (0,1)
}

TEST(MachineGs1280, CpuAddrLandsInRegion)
{
    auto m = Machine::buildGS1280(4);
    EXPECT_EQ(mem::regionNode(m->cpuAddr(3, 12345)), 3);
    EXPECT_EQ(m->addressMap().home(m->cpuAddr(2, 0)).node, 2);
}

TEST(MachineGs1280, StripedMapAlternates)
{
    Gs1280Options opt;
    opt.striped = true;
    auto m = Machine::buildGS1280(8, opt);
    const auto &map = m->addressMap();
    mem::Addr base = m->cpuAddr(0, 0);
    EXPECT_EQ(map.home(base + 0 * 64).node, 0);
    EXPECT_EQ(map.home(base + 2 * 64).node, m->moduleBuddy(0));
}

TEST(MachineGs1280, RunsAWorkloadAndDrains)
{
    auto m = Machine::buildGS1280(4);
    wl::PointerChase chase(m->cpuAddr(1, 0), 1 << 20, 64, 500);
    EXPECT_TRUE(m->run({&chase}));
    EXPECT_TRUE(m->drained());
    EXPECT_EQ(m->core(0).stats().opsDone, 500u);

    std::vector<coher::CoherentNode *> nodes;
    for (NodeId n = 0; n < m->nodeCount(); ++n)
        nodes.push_back(&m->node(n));
    EXPECT_TRUE(coher::verifyCoherence(nodes).ok);
}

TEST(MachineGs1280, ShuffleOptionBuildsShuffleTopology)
{
    Gs1280Options opt;
    opt.shuffle = true;
    auto m = Machine::buildGS1280(8, opt);
    EXPECT_NE(m->topology().name().find("shuffle"),
              std::string::npos);
}

TEST(MachineGs320, TreeWithMemoryAtSwitches)
{
    auto m = Machine::buildGS320(16);
    EXPECT_EQ(m->cpuCount(), 16);
    EXPECT_EQ(m->nodeCount(), 21); // 16 CPUs + 4 QBBs + global
    for (NodeId n = 0; n < 16; ++n) {
        EXPECT_TRUE(m->node(n).hasCache());
        EXPECT_FALSE(m->node(n).hasMemory());
    }
    for (NodeId n = 16; n < 20; ++n) {
        ASSERT_TRUE(m->hasNode(n));
        EXPECT_FALSE(m->node(n).hasCache());
        EXPECT_TRUE(m->node(n).hasMemory());
    }
    EXPECT_FALSE(m->hasNode(20)); // global switch: pure router
}

TEST(MachineGs320, HomesAreQbbSwitches)
{
    auto m = Machine::buildGS320(8);
    EXPECT_EQ(m->addressMap().home(m->cpuAddr(0, 0)).node, 8);
    EXPECT_EQ(m->addressMap().home(m->cpuAddr(5, 0)).node, 9);
}

TEST(MachineGs320, RunsAndStaysCoherent)
{
    auto m = Machine::buildGS320(8);
    wl::PointerChase chase(m->cpuAddr(4, 0), 1 << 20, 64, 300);
    EXPECT_TRUE(m->run({&chase}));
    std::vector<coher::CoherentNode *> nodes;
    for (NodeId n = 0; n < m->nodeCount(); ++n)
        if (m->hasNode(n))
            nodes.push_back(&m->node(n));
    EXPECT_TRUE(coher::verifyCoherence(nodes).ok);
}

TEST(MachineEs45, FourCpuBus)
{
    auto m = Machine::buildES45(4);
    EXPECT_EQ(m->nodeCount(), 5);
    EXPECT_TRUE(m->node(4).hasMemory());
    wl::PointerChase chase(m->cpuAddr(0, 0), 1 << 20, 64, 300);
    EXPECT_TRUE(m->run({&chase}));
}

TEST(Machine, AnalyticTimingMatchesKind)
{
    EXPECT_EQ(Machine::buildGS1280(4)->analyticTiming().l2SizeMB,
              1.75);
    EXPECT_EQ(Machine::buildGS320(4)->analyticTiming().l2SizeMB,
              16.0);
    EXPECT_EQ(Machine::buildES45(4)->analyticTiming().name,
              "ES45/1.25GHz");
}

TEST(Machine, ClearStatsResetsCounters)
{
    auto m = Machine::buildGS1280(4);
    wl::PointerChase chase(m->cpuAddr(1, 0), 1 << 20, 64, 100);
    m->run({&chase});
    EXPECT_GT(m->node(0).stats().accesses, 0u);
    m->clearStats();
    EXPECT_EQ(m->node(0).stats().accesses, 0u);
    EXPECT_EQ(m->network().stats().deliveredPackets, 0u);
}

} // namespace

/**
 * @file
 * Example: I/O DMA streams crossing the fabric — the paper's
 * future-work direction ("more emphasis on characterizing real I/O
 * intensive applications") made runnable.
 *
 * Starts several device-rate DMA streams across a GS1280 while a
 * CPU runs STREAM, showing (1) per-port I/O bandwidth near the
 * 3.1 GB/s link limit and (2) the IO packet class not disturbing
 * coherent traffic.
 *
 * Usage: io_streams [--cpus=8] [--mb=4]
 */

#include <iostream>
#include <memory>

#include "sim/args.hh"
#include "sim/table.hh"
#include "system/io.hh"
#include "system/machine.hh"
#include "workload/stream.hh"

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              {{"cpus", "CPU count (default 8)"},
               {"mb", "MB per DMA stream (default 4)"}});
    int cpus = static_cast<int>(args.getInt("cpus", 8));
    auto bytes =
        static_cast<std::uint64_t>(args.getInt("mb", 4)) << 20;

    auto m = sys::Machine::buildGS1280(cpus);

    // Disk-to-disk style streams between distant nodes.
    std::vector<std::unique_ptr<sys::IoDma>> streams;
    int pairs = cpus / 2;
    for (int k = 0; k < pairs; ++k) {
        sys::IoDmaParams p;
        p.totalBytes = bytes;
        streams.push_back(std::make_unique<sys::IoDma>(
            m->network(), k, cpus - 1 - k, p));
        streams.back()->attachSink(m->node(cpus - 1 - k));
        streams.back()->start(nullptr);
    }

    // Meanwhile, CPU 0 streams its local memory.
    wl::StreamTriad triad(m->cpuAddr(0, 0), 4 << 20);
    std::vector<cpu::TrafficSource *> sources{&triad};
    bool ok = m->run(sources, 30000 * tickMs);

    // Let the DMA finish.
    m->ctx().queue().runUntil(m->ctx().now() + 100 * tickMs);

    printBanner(std::cout, "I/O DMA streams across a " +
                               std::to_string(cpus) + "P GS1280");
    Table t({"stream", "delivered GB/s", "packets"});
    for (std::size_t k = 0; k < streams.size(); ++k) {
        t.addRow({std::to_string(k) + " -> " +
                      std::to_string(cpus - 1 - static_cast<int>(k)),
                  Table::num(streams[k]->deliveredGBs(), 2),
                  Table::num(streams[k]->packetsDelivered())});
    }
    t.print(std::cout);

    double gbs = static_cast<double>(triad.linesProcessed()) * 192.0 /
                 m->core(0).stats().elapsedNs();
    std::cout << "\nconcurrent STREAM Triad on CPU0: "
              << Table::num(gbs, 2) << " GB/s"
              << (ok ? "" : "  [TIMEOUT]")
              << "\n(the IO class rides its own virtual channels; "
                 "coherent traffic barely notices)\n";
    return 0;
}

/**
 * @file
 * Example: replay an address trace through a machine.
 *
 * Without arguments, writes a demonstration trace (a blocked stencil
 * with a remote exchange), replays it on a 4-CPU GS1280, and reports
 * the timing breakdown. Point --trace at your own file to time any
 * recorded access stream; the format is documented in cpu/trace.hh.
 *
 * Usage: trace_replay [--trace=path] [--cpu=0]
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "cpu/trace.hh"
#include "sim/args.hh"
#include "sim/table.hh"
#include "system/machine.hh"

namespace
{

using namespace gs;

/** A little blocked-stencil trace with one remote exchange. */
cpu::TraceSource
demoTrace()
{
    cpu::TraceSource trace;
    // Three passes over a 16 KB block (second and third hit cache).
    for (int pass = 0; pass < 3; ++pass) {
        for (mem::Addr a = 0; a < 16 * 1024; a += 64) {
            cpu::MemOp op;
            op.addr = a;
            op.write = pass == 2 && (a / 64) % 4 == 0;
            op.thinkNs = 4.0;
            trace.append(op);
        }
    }
    // A dependent pointer walk through remote memory (CPU 1's).
    for (int i = 0; i < 64; ++i) {
        cpu::MemOp op;
        op.addr = mem::regionBase(1) + static_cast<mem::Addr>(i) * 8192;
        op.dependent = true;
        trace.append(op);
    }
    return trace;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              {{"trace", "trace file (default: built-in demo)"},
               {"cpu", "CPU to replay on (default 0)"}});
    int cpuId = static_cast<int>(args.getInt("cpu", 0));

    auto m = sys::Machine::buildGS1280(4);

    cpu::TraceSource trace =
        args.has("trace") ? cpu::TraceSource::load(
                                args.getString("trace", ""))
                          : demoTrace();

    printBanner(std::cout, "Trace replay on " + m->topology().name());
    std::cout << trace.size() << " operations\n";

    std::vector<cpu::TrafficSource *> sources(
        static_cast<std::size_t>(cpuId) + 1, nullptr);
    sources[static_cast<std::size_t>(cpuId)] = &trace;
    if (!m->run(sources)) {
        std::cout << "replay hit the time limit\n";
        return 1;
    }

    const auto &cs = m->core(cpuId).stats();
    const auto &ns = m->node(cpuId).stats();
    Table t({"metric", "value"});
    t.addRow({"elapsed", Table::num(cs.elapsedNs() / 1000.0, 1) +
                             " us"});
    t.addRow({"ops", Table::num(cs.opsDone)});
    t.addRow({"L1 hits", Table::num(cs.l1Hits)});
    t.addRow({"L2 hits", Table::num(ns.l2Hits)});
    t.addRow({"misses to memory/remote", Table::num(ns.misses)});
    t.addRow({"mean miss latency",
              Table::num(ns.missLatencyNs.mean(), 1) + " ns"});
    t.print(std::cout);

    // Round-trip demonstration: dump the trace back out.
    if (!args.has("trace")) {
        std::ostringstream os;
        trace.dump(os);
        std::cout << "\n(trace round-trips through the text format: "
                  << os.str().size() << " bytes; see cpu/trace.hh)\n";
    }
    return 0;
}

/**
 * @file
 * Example: the Xmesh monitor in action, the way the paper's authors
 * used it — watch a healthy workload, then recognize a hot spot.
 *
 * Runs GUPS (even traffic) and then a hot-spot pattern on a 16-CPU
 * GS1280, printing the per-node memory-controller heat map after
 * each (Figure 27's display, as ASCII).
 *
 * Usage: xmesh_demo [--cpus=16] [--ops=2000]
 */

#include <iostream>
#include <memory>

#include "sim/args.hh"
#include "sim/table.hh"
#include "system/xmesh.hh"
#include "workload/gups.hh"
#include "workload/load_test.hh"

namespace
{

using namespace gs;

template <typename Gen, typename Make>
void
episode(sys::Machine &m, const char *title, Make make)
{
    sys::Xmesh mon(m, 20 * tickUs);
    mon.start();

    std::vector<std::unique_ptr<Gen>> gens;
    std::vector<cpu::TrafficSource *> sources;
    for (int c = 0; c < m.cpuCount(); ++c) {
        gens.push_back(make(c));
        sources.push_back(gens.back().get());
    }
    bool ok = m.run(sources, 30000 * tickMs);
    mon.stop();

    printBanner(std::cout, title);
    if (!mon.samples().empty()) {
        const auto &mid = mon.samples()[mon.samples().size() / 2];
        std::cout << mon.heatmap(mid);
        std::cout << "average IP-link utilization: "
                  << Table::num(mid.avgLinkUtil * 100, 1) << "%\n";
    }
    if (!ok)
        std::cout << "[run hit the time limit]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gs;
    Args args(argc, argv,
              {{"cpus", "CPU count (default 16)"},
               {"ops", "ops per CPU (default 2000)"}});
    int cpus = static_cast<int>(args.getInt("cpus", 16));
    auto ops = static_cast<std::uint64_t>(args.getInt("ops", 4000));

    std::cout << "Xmesh demo: spot the difference between balanced "
                 "and hot-spot traffic.\n";

    {
        sys::Gs1280Options opt;
        opt.mlp = 8;
        auto m = sys::Machine::buildGS1280(cpus, opt);
        episode<wl::Gups>(*m, "GUPS: every controller evenly busy",
                          [&](int c) {
            return std::make_unique<wl::Gups>(
                cpus, 256ULL << 20, ops,
                100 + static_cast<unsigned>(c));
        });
    }
    {
        sys::Gs1280Options opt;
        opt.mlp = 8;
        auto m = sys::Machine::buildGS1280(cpus, opt);
        episode<wl::HotSpotReads>(
            *m, "Hot spot: one controller glows (Figure 27)",
            [&](int c) {
            return std::make_unique<wl::HotSpotReads>(
                0, 512ULL << 20, ops,
                200 + static_cast<unsigned>(c));
        });
    }

    std::cout << "\nOnce a hot spot is recognized, Section 6's memory "
                 "striping spreads it over the module pair "
                 "(bench/fig26_hotspot_striping).\n";
    return 0;
}

/**
 * @file
 * Quickstart: build a 16-CPU GS1280, measure what the paper
 * measures, and audit coherence.
 *
 *  1. Local dependent-load latency (the 83 ns of Figure 13's
 *     corner square).
 *  2. Remote dependent-load latency, one hop away.
 *  3. STREAM Triad bandwidth on one CPU.
 *  4. A short all-CPUs GUPS burst with the network involved.
 *  5. A whole-machine coherence audit at the end.
 */

#include <iostream>
#include <memory>

#include "coherence/checker.hh"
#include "sim/table.hh"
#include "system/machine.hh"
#include "workload/gups.hh"
#include "workload/pointer_chase.hh"
#include "workload/stream.hh"

int
main()
{
    using namespace gs;

    auto machine = sys::Machine::buildGS1280(16);
    std::cout << "Built " << machine->topology().name() << " with "
              << machine->cpuCount() << " CPUs\n";

    // 1. Local dependent loads: CPU0 chases a 32 MB chain at home.
    {
        wl::PointerChase chase(machine->cpuAddr(0, 0), 32 << 20, 64,
                               20000);
        bool ok = machine->run({&chase});
        double ns = machine->node(0).stats().missLatencyNs.mean();
        std::cout << "local dependent-load latency:  " << Table::num(ns, 1)
                  << " ns" << (ok ? "" : "  [TIMEOUT]") << '\n';
    }

    // 2. Remote dependent loads: CPU0 chases CPU1's memory.
    {
        machine->clearStats();
        wl::PointerChase chase(machine->cpuAddr(1, 1ULL << 30),
                               32 << 20, 64, 20000);
        bool ok = machine->run({&chase});
        double ns = machine->node(0).stats().missLatencyNs.mean();
        std::cout << "1-hop dependent-load latency:  " << Table::num(ns, 1)
                  << " ns" << (ok ? "" : "  [TIMEOUT]") << '\n';
    }

    // 3. STREAM Triad on one CPU.
    {
        machine->clearStats();
        wl::StreamTriad triad(machine->cpuAddr(0, 2ULL << 30),
                              8 << 20);
        bool ok = machine->run({&triad});
        const auto &cs = machine->core(0).stats();
        double gbs = static_cast<double>(triad.linesProcessed()) *
                     wl::StreamTriad::bytesPerLine / cs.elapsedNs();
        std::cout << "1-CPU STREAM Triad:            " << Table::num(gbs, 2)
                  << " GB/s" << (ok ? "" : "  [TIMEOUT]") << '\n';
    }

    // 4. GUPS across all 16 CPUs.
    {
        machine->clearStats();
        std::vector<std::unique_ptr<wl::Gups>> gups;
        std::vector<cpu::TrafficSource *> sources;
        for (int c = 0; c < machine->cpuCount(); ++c) {
            gups.push_back(std::make_unique<wl::Gups>(
                machine->cpuCount(), 256 << 20, 4000,
                1000 + static_cast<std::uint64_t>(c)));
            sources.push_back(gups.back().get());
        }
        Tick start = machine->ctx().now();
        bool ok = machine->run(sources);
        double seconds =
            ticksToNs(machine->ctx().now() - start) * 1e-9;
        double updates = 4000.0 * machine->cpuCount();
        std::cout << "16-CPU GUPS:                   "
                  << Table::num(updates / seconds / 1e6, 1)
                  << " Mupdates/s" << (ok ? "" : "  [TIMEOUT]") << '\n';
    }

    // 5. Coherence audit.
    {
        std::vector<coher::CoherentNode *> nodes;
        for (NodeId n = 0; n < machine->nodeCount(); ++n)
            if (machine->hasNode(n))
                nodes.push_back(&machine->node(n));
        auto check = coher::verifyCoherence(nodes);
        std::cout << "coherence audit:               "
                  << (check.ok ? "clean" : check.firstViolation)
                  << '\n';
    }
    return 0;
}

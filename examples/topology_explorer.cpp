/**
 * @file
 * Example: explore interconnect topologies and the shuffle rewiring.
 *
 * Prints graph metrics (average/worst hop distance, bisection width)
 * for a torus and its shuffled variant at a user-chosen size, plus
 * the paper's full Table 1, and a hop-distance map from node 0 like
 * the layout of Figure 13.
 *
 * Usage: topology_explorer [--width=8] [--height=4]
 */

#include <cstdio>
#include <iostream>

#include "analytic/shuffle_model.hh"
#include "sim/args.hh"
#include "sim/table.hh"
#include "topology/shuffle.hh"
#include "topology/torus.hh"

int
main(int argc, char **argv)
{
    gs::Args args(argc, argv,
                  {{"width", "torus columns (default 8)"},
                   {"height", "torus rows (default 4)"}});
    int w = static_cast<int>(args.getInt("width", 8));
    int h = static_cast<int>(args.getInt("height", 4));

    gs::topo::Torus2D torus(w, h);
    gs::topo::ShuffleTorus shuffle(w, h, gs::topo::ShufflePolicy::Free);

    gs::printBanner(std::cout, "Topology metrics: " + torus.name() +
                                   " vs " + shuffle.name());
    gs::Table metrics({"metric", "torus", "shuffle", "gain"});
    auto g = gs::analytic::evaluateShuffle(w, h);
    metrics.addRow({"average hops", gs::Table::num(g.torusAvg, 3),
                    gs::Table::num(g.shuffleAvg, 3),
                    gs::Table::num(g.avgLatencyGain, 3)});
    metrics.addRow({"worst hops", gs::Table::num(g.torusWorst),
                    gs::Table::num(g.shuffleWorst),
                    gs::Table::num(g.worstLatencyGain, 3)});
    metrics.addRow({"bisection links", gs::Table::num(g.torusBisection),
                    gs::Table::num(g.shuffleBisection),
                    gs::Table::num(g.bisectionGain, 3)});
    metrics.print(std::cout);

    gs::printBanner(std::cout, "Paper Table 1: gains from shuffle");
    gs::Table t1({"size", "aver. latency", "worst latency",
                  "bisection width"});
    for (const auto &row : gs::analytic::table1()) {
        t1.addRow({std::to_string(row.width) + "x" +
                       std::to_string(row.height),
                   gs::Table::num(row.avgLatencyGain, 3),
                   gs::Table::num(row.worstLatencyGain, 3),
                   gs::Table::num(row.bisectionGain, 3)});
    }
    t1.print(std::cout);

    gs::printBanner(std::cout,
                    "Hop distance from node 0 (" + torus.name() + ")");
    auto dist = torus.distancesFrom(0);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x)
            std::printf("%4d", dist[static_cast<std::size_t>(
                                  torus.nodeAt(x, y))]);
        std::printf("\n");
    }
    return 0;
}
